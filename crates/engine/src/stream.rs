//! The persistent streaming pool: asynchronous intake over long-lived
//! workers.
//!
//! [`BatchEngine::execute`] is the right shape when the roster is known up
//! front; a long-lived consumer (the mapping service daemon) instead needs
//! to *submit jobs as they arrive* and collect results as they finish. A
//! [`StreamEngine`] keeps the engine's worker threads alive across
//! submissions:
//!
//! * **non-blocking submit** — [`StreamEngine::submit`] either enqueues
//!   and returns a monotonically increasing job ID, or reports
//!   [`SubmitError::Full`]/[`SubmitError::Closed`] without waiting (the
//!   bounded queue is the engine-side admission control);
//! * **cancellation** — [`StreamEngine::cancel`] removes a job that has
//!   not started yet;
//! * **drain** — [`StreamEngine::drain`] blocks until everything accepted
//!   so far has finished;
//! * **graceful shutdown** — [`StreamEngine::close`] stops intake while
//!   workers finish the backlog, and dropping the engine closes intake,
//!   **completes every queued job**, and joins all workers. Accepted work
//!   is never lost.
//!
//! Jobs should be pure functions of their input, like
//! [`BatchEngine::execute`] jobs: results are delivered in completion
//! order tagged with the submission ID, so any consumer can re-establish
//! submission order deterministically.
//!
//! **Trace propagation.** Each submission captures the submitting
//! thread's [`trace::Ctx`]; the worker that picks the job up re-installs
//! it for the duration of the job function and records a retroactive
//! `engine:pickup` span covering the enqueue→pickup interval. With no
//! context installed (the common case) the cost is one thread-local read
//! per submission — spans never alter results.

use crate::pool::BatchEngine;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Why a submission was not accepted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded intake queue is at capacity; retry after results drain.
    Full {
        /// The queue bound the engine was created with.
        capacity: usize,
    },
    /// The engine is shutting down and no longer accepts work.
    Closed,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Full { capacity } => {
                write!(f, "stream queue full (capacity {capacity})")
            }
            SubmitError::Closed => write!(f, "stream engine is closed"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// A queue entry: submission ID, the submitter's tracing context with its
/// enqueue stamp (0 when tracing is disabled), and the job itself.
type QueuedJob<T> = (u64, trace::Ctx, u64, T);

struct StreamState<T, R> {
    queue: VecDeque<QueuedJob<T>>,
    next_id: u64,
    in_flight: usize,
    done: VecDeque<(u64, R)>,
    closed: bool,
}

struct Shared<T, R> {
    state: Mutex<StreamState<T, R>>,
    /// Signals queue transitions: workers wait here for jobs, blocking
    /// producers wait here for capacity.
    jobs_cv: Condvar,
    /// Signals completions: `recv`/`drain` waiters wake here.
    done_cv: Condvar,
    capacity: usize,
}

/// A persistent worker pool accepting jobs one at a time; see the
/// crate-level streaming docs.
pub struct StreamEngine<T, R> {
    shared: Arc<Shared<T, R>>,
    workers: Vec<JoinHandle<()>>,
}

impl BatchEngine {
    /// Spawns this engine's worker count as a persistent pool running `f`
    /// over streamed jobs, with an intake queue bounded at `capacity`
    /// (clamped to at least 1).
    ///
    /// The pool lives until [`StreamEngine::close`] + backlog completion
    /// or drop; see the crate-level streaming docs for the lifecycle.
    pub fn stream<T, R, F>(&self, capacity: usize, f: F) -> StreamEngine<T, R>
    where
        T: Send + 'static,
        R: Send + 'static,
        F: Fn(T) -> R + Send + Sync + 'static,
    {
        let shared = Arc::new(Shared {
            state: Mutex::new(StreamState {
                queue: VecDeque::new(),
                next_id: 0,
                in_flight: 0,
                done: VecDeque::new(),
                closed: false,
            }),
            jobs_cv: Condvar::new(),
            done_cv: Condvar::new(),
            capacity: capacity.max(1),
        });
        let f = Arc::new(f);
        let workers = (0..self.threads())
            .map(|_| {
                let shared = shared.clone();
                let f = f.clone();
                std::thread::spawn(move || worker_loop(&shared, f.as_ref()))
            })
            .collect();
        StreamEngine { shared, workers }
    }
}

fn worker_loop<T, R>(shared: &Shared<T, R>, f: &(impl Fn(T) -> R + ?Sized)) {
    loop {
        let (id, ctx, enqueued_ns, job) = {
            let mut state = shared.state.lock().expect("stream state poisoned");
            loop {
                if let Some(job) = state.queue.pop_front() {
                    state.in_flight += 1;
                    break job;
                }
                // Intake is closed *and* the backlog is gone: exit. The
                // pop-before-check ordering is what makes shutdown drain
                // queued jobs instead of dropping them.
                if state.closed {
                    return;
                }
                state = shared.jobs_cv.wait(state).expect("stream state poisoned");
            }
        };
        // A slot opened up; wake any blocked producer.
        shared.jobs_cv.notify_all();
        let _ctx_guard = trace::set_ctx(&ctx);
        if ctx.enabled() {
            trace::record_span("engine:pickup", enqueued_ns, trace::now_ns());
        }
        let result = f(job);
        {
            let mut state = shared.state.lock().expect("stream state poisoned");
            state.in_flight -= 1;
            state.done.push_back((id, result));
        }
        shared.done_cv.notify_all();
    }
}

/// The submitting thread's tracing context plus an enqueue stamp (taken
/// only when tracing is live, so the disabled path never reads the
/// clock).
fn capture_submit_ctx() -> (trace::Ctx, u64) {
    let ctx = trace::current_ctx();
    let enqueued_ns = if ctx.enabled() { trace::now_ns() } else { 0 };
    (ctx, enqueued_ns)
}

impl<T, R> StreamEngine<T, R> {
    /// Enqueues a job without blocking and returns its submission ID
    /// (monotonically increasing from 0).
    ///
    /// # Errors
    ///
    /// [`SubmitError::Full`] when the intake queue is at capacity,
    /// [`SubmitError::Closed`] after [`StreamEngine::close`].
    pub fn submit(&self, job: T) -> Result<u64, SubmitError> {
        let (ctx, enqueued_ns) = capture_submit_ctx();
        let mut state = self.shared.state.lock().expect("stream state poisoned");
        if state.closed {
            return Err(SubmitError::Closed);
        }
        if state.queue.len() >= self.shared.capacity {
            return Err(SubmitError::Full {
                capacity: self.shared.capacity,
            });
        }
        let id = state.next_id;
        state.next_id += 1;
        state.queue.push_back((id, ctx, enqueued_ns, job));
        drop(state);
        self.shared.jobs_cv.notify_all();
        Ok(id)
    }

    /// [`StreamEngine::submit`], waiting for a queue slot instead of
    /// returning [`SubmitError::Full`].
    ///
    /// # Errors
    ///
    /// [`SubmitError::Closed`] when the engine closes while waiting.
    pub fn submit_blocking(&self, job: T) -> Result<u64, SubmitError> {
        let (ctx, enqueued_ns) = capture_submit_ctx();
        let mut state = self.shared.state.lock().expect("stream state poisoned");
        loop {
            if state.closed {
                return Err(SubmitError::Closed);
            }
            if state.queue.len() < self.shared.capacity {
                let id = state.next_id;
                state.next_id += 1;
                state.queue.push_back((id, ctx, enqueued_ns, job));
                drop(state);
                self.shared.jobs_cv.notify_all();
                return Ok(id);
            }
            state = self
                .shared
                .jobs_cv
                .wait(state)
                .expect("stream state poisoned");
        }
    }

    /// Cancels a queued job. Returns `true` when the job was still in the
    /// intake queue (it will never run); `false` when it already started,
    /// finished, or never existed.
    pub fn cancel(&self, id: u64) -> bool {
        let mut state = self.shared.state.lock().expect("stream state poisoned");
        let before = state.queue.len();
        state.queue.retain(|(queued, ..)| *queued != id);
        let removed = state.queue.len() < before;
        if removed {
            drop(state);
            // A slot opened up; wake blocked producers (and drain waiters:
            // the cancelled job will never complete).
            self.shared.jobs_cv.notify_all();
            self.shared.done_cv.notify_all();
        }
        removed
    }

    /// Number of jobs accepted but not yet picked up by a worker.
    pub fn queued(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("stream state poisoned")
            .queue
            .len()
    }

    /// Takes the next completed `(id, result)` pair, blocking until one is
    /// available. Returns `None` once the engine is closed and every
    /// accepted job's result has been delivered.
    pub fn recv(&self) -> Option<(u64, R)> {
        let mut state = self.shared.state.lock().expect("stream state poisoned");
        loop {
            if let Some(done) = state.done.pop_front() {
                return Some(done);
            }
            if state.closed && state.queue.is_empty() && state.in_flight == 0 {
                return None;
            }
            state = self
                .shared
                .done_cv
                .wait(state)
                .expect("stream state poisoned");
        }
    }

    /// Takes the next completed `(id, result)` pair without blocking.
    pub fn try_recv(&self) -> Option<(u64, R)> {
        self.shared
            .state
            .lock()
            .expect("stream state poisoned")
            .done
            .pop_front()
    }

    /// Blocks until every accepted job has finished (the intake queue is
    /// empty and nothing is in flight). Results stay available to `recv`.
    pub fn drain(&self) {
        let mut state = self.shared.state.lock().expect("stream state poisoned");
        while !state.queue.is_empty() || state.in_flight > 0 {
            state = self
                .shared
                .done_cv
                .wait(state)
                .expect("stream state poisoned");
        }
    }

    /// Closes intake: further submissions fail with
    /// [`SubmitError::Closed`], while workers keep draining the backlog.
    /// Idempotent.
    pub fn close(&self) {
        self.shared
            .state
            .lock()
            .expect("stream state poisoned")
            .closed = true;
        self.shared.jobs_cv.notify_all();
        self.shared.done_cv.notify_all();
    }

    /// Graceful shutdown: closes intake, completes the backlog, joins all
    /// workers and returns the undelivered results (completion order).
    pub fn shutdown(mut self) -> Vec<(u64, R)> {
        self.close();
        for handle in self.workers.drain(..) {
            if let Err(panic) = handle.join() {
                std::panic::resume_unwind(panic);
            }
        }
        let mut state = self.shared.state.lock().expect("stream state poisoned");
        state.done.drain(..).collect()
    }
}

impl<T, R> Drop for StreamEngine<T, R> {
    /// Dropping the engine is a graceful shutdown: intake closes, queued
    /// jobs still run to completion, and every worker is joined — no
    /// detached threads, no lost work.
    fn drop(&mut self) {
        self.close();
        for handle in self.workers.drain(..) {
            // Propagating here would abort in an unwinding context;
            // a worker panic is a job-function bug that already printed.
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    /// A reusable gate: jobs block on `wait` until `open` is called.
    struct Gate {
        open: Mutex<bool>,
        cv: Condvar,
    }

    impl Gate {
        fn new() -> Arc<Gate> {
            Arc::new(Gate {
                open: Mutex::new(false),
                cv: Condvar::new(),
            })
        }

        fn wait(&self) {
            let mut open = self.open.lock().unwrap();
            while !*open {
                open = self.cv.wait(open).unwrap();
            }
        }

        fn open(&self) {
            *self.open.lock().unwrap() = true;
            self.cv.notify_all();
        }
    }

    #[test]
    fn streamed_jobs_come_back_with_submission_ids() {
        let stream = BatchEngine::with_threads(4).stream(64, |x: u64| x * 3);
        let mut ids = Vec::new();
        for x in 0..20u64 {
            ids.push(stream.submit(x).unwrap());
        }
        assert_eq!(ids, (0..20).collect::<Vec<u64>>());
        let mut got: Vec<(u64, u64)> = (0..20).map(|_| stream.recv().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, (0..20u64).map(|x| (x, x * 3)).collect::<Vec<_>>());
        assert!(stream.try_recv().is_none());
    }

    #[test]
    fn full_queue_rejects_without_blocking() {
        let gate = Gate::new();
        let g = gate.clone();
        let stream = BatchEngine::with_threads(1).stream(2, move |x: u64| {
            g.wait();
            x
        });
        // Worker picks up the first job and blocks on the gate; the next
        // two fill the queue; the fourth must be rejected immediately.
        stream.submit(0).unwrap();
        while stream.queued() == 1 {
            std::thread::yield_now(); // wait for the worker's pickup
        }
        stream.submit(1).unwrap();
        stream.submit(2).unwrap();
        assert_eq!(stream.submit(3), Err(SubmitError::Full { capacity: 2 }));
        gate.open();
        stream.drain();
        // With capacity freed, submission works again.
        stream.submit(3).unwrap();
        let results: Vec<u64> = (0..4).map(|_| stream.recv().unwrap().1).collect();
        assert_eq!(results.len(), 4);
    }

    #[test]
    fn submit_blocking_waits_for_capacity() {
        let gate = Gate::new();
        let g = gate.clone();
        let stream = BatchEngine::with_threads(1).stream(1, move |x: u64| {
            g.wait();
            x
        });
        stream.submit(0).unwrap();
        while stream.queued() == 1 {
            std::thread::yield_now();
        }
        stream.submit(1).unwrap(); // queue now full
        std::thread::scope(|scope| {
            let blocked = scope.spawn(|| stream.submit_blocking(2));
            std::thread::sleep(Duration::from_millis(20));
            assert!(!blocked.is_finished(), "must wait, not reject");
            gate.open();
            assert_eq!(blocked.join().unwrap(), Ok(2));
        });
        stream.drain();
    }

    #[test]
    fn cancel_removes_queued_jobs_only() {
        let gate = Gate::new();
        let g = gate.clone();
        let ran = Arc::new(AtomicUsize::new(0));
        let r = ran.clone();
        let stream = BatchEngine::with_threads(1).stream(8, move |x: u64| {
            g.wait();
            r.fetch_add(1, Ordering::SeqCst);
            x
        });
        let first = stream.submit(0).unwrap();
        while stream.queued() == 1 {
            std::thread::yield_now();
        }
        let second = stream.submit(1).unwrap();
        assert!(stream.cancel(second), "queued job must be cancellable");
        assert!(!stream.cancel(second), "already cancelled");
        assert!(!stream.cancel(first), "in-flight job is not cancellable");
        assert!(!stream.cancel(999), "unknown id");
        gate.open();
        stream.drain();
        assert_eq!(ran.load(Ordering::SeqCst), 1, "cancelled job never ran");
        assert_eq!(stream.recv().unwrap(), (0, 0));
    }

    #[test]
    fn dropping_with_queued_jobs_joins_workers_and_loses_no_work() {
        // The graceful-shutdown contract: drop closes intake, queued jobs
        // still execute exactly once, and all workers are joined (no
        // deadlock, no detached threads, no lost results).
        for threads in [1, 4] {
            let ran = Arc::new(AtomicUsize::new(0));
            let r = ran.clone();
            let stream = BatchEngine::with_threads(threads).stream(256, move |x: u64| {
                r.fetch_add(1, Ordering::SeqCst);
                x
            });
            for x in 0..100u64 {
                stream.submit(x).unwrap();
            }
            drop(stream); // joins; queued jobs must all run first
            assert_eq!(
                ran.load(Ordering::SeqCst),
                100,
                "threads={threads}: every accepted job runs exactly once"
            );
        }
    }

    #[test]
    fn shutdown_returns_undelivered_results() {
        let stream = BatchEngine::with_threads(2).stream(64, |x: u64| x + 100);
        for x in 0..10u64 {
            stream.submit(x).unwrap();
        }
        let mut leftover = stream.shutdown();
        leftover.sort_unstable();
        assert_eq!(
            leftover,
            (0..10u64).map(|x| (x, x + 100)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn closed_engine_rejects_submissions_but_finishes_backlog() {
        let gate = Gate::new();
        let g = gate.clone();
        let stream = BatchEngine::with_threads(1).stream(8, move |x: u64| {
            g.wait();
            x
        });
        stream.submit(0).unwrap();
        stream.submit(1).unwrap();
        stream.close();
        assert_eq!(stream.submit(2), Err(SubmitError::Closed));
        assert_eq!(stream.submit_blocking(2), Err(SubmitError::Closed));
        gate.open();
        let mut got = vec![stream.recv().unwrap(), stream.recv().unwrap()];
        got.sort_unstable();
        assert_eq!(got, vec![(0, 0), (1, 1)]);
        assert_eq!(stream.recv(), None, "closed + drained means end of stream");
    }

    #[test]
    fn submitter_trace_context_reaches_the_worker() {
        let tracer = trace::Tracer::new(42, 64);
        let ctx = trace::Ctx::new(tracer.clone(), trace::ROOT_SPAN);
        let stream = BatchEngine::with_threads(2).stream(8, |x: u64| {
            let _s = trace::span("job-body");
            x
        });
        {
            let _g = trace::set_ctx(&ctx);
            stream.submit(5).unwrap();
        }
        stream.submit(6).unwrap(); // no context: must record nothing
        stream.drain();
        let spans = tracer.snapshot();
        let pickup = spans
            .iter()
            .find(|s| s.name == "engine:pickup")
            .expect("pickup span recorded");
        assert_eq!(pickup.parent, trace::ROOT_SPAN);
        assert!(pickup.end_ns >= pickup.start_ns);
        let bodies = spans.iter().filter(|s| s.name == "job-body").count();
        assert_eq!(bodies, 1, "only the traced submission records spans");
    }

    #[test]
    fn recv_blocks_until_a_result_lands() {
        let stream = BatchEngine::with_threads(2).stream(8, |x: u64| x * x);
        std::thread::scope(|scope| {
            let waiter = scope.spawn(|| stream.recv());
            std::thread::sleep(Duration::from_millis(10));
            stream.submit(7).unwrap();
            assert_eq!(waiter.join().unwrap(), Some((0, 49)));
        });
    }
}
