//! Region placement: assigning interaction clusters to device regions by
//! solving the mapping problem *on the region graph itself*, then
//! expanding the cluster→region assignment into a full qubit layout.
//!
//! The placement problem is a miniature of the original one — clusters
//! interact the way qubits do, regions couple the way physical qubits do
//! — so it reuses the existing [`MappingPipeline`] recursively: a small
//! "placement circuit" (one logical qubit per cluster, CX traffic scaled
//! by log₂ of the cross-cluster ω-mass) is routed over the quotient
//! [`CouplingGraph`], seeded with the noise-aware region ranking, and the
//! *final* layout of that run is the cluster→region assignment.

use crate::cluster::{Cluster, InteractionWeights};
use crate::coarsen::RegionMap;
use crate::HierConfig;
use affine::WeightMode;
use circuit::Circuit;
use qlosure::{
    DependenceWeightsPass, FixedLayoutPass, Layout, MappingPipeline, QlosureRoutingPass,
};
use std::collections::VecDeque;

/// Caps how many CX repetitions the heaviest cluster pair contributes to
/// the placement circuit (repetitions grow with `log₂` of the pair mass).
const MAX_PLACEMENT_ROUNDS: u32 = 4;

/// Chooses the region hosting each cluster.
///
/// The seed assignment pairs clusters (heaviest first — they were grown
/// in that order) with regions in score-rank order; when the quotient is
/// connected and there is real cross-cluster traffic, a recursive
/// [`MappingPipeline`] run on the quotient refines the seed, and its
/// final layout becomes the assignment. Degenerate shapes (one cluster,
/// one region, disconnected quotient) keep the seed.
pub fn place_clusters(
    rm: &RegionMap,
    clusters: &[Cluster],
    iw: &InteractionWeights,
    cluster_of: &[u32],
    config: &HierConfig,
) -> Vec<u32> {
    let m = clusters.len();
    let k = rm.n_regions();
    assert!(m <= k, "cluster count may not exceed region count");
    let seed: Vec<u32> = (0..m).map(|c| rm.rank[c]).collect();
    if m <= 1 || k <= 1 || !rm.quotient.is_connected() {
        return seed;
    }
    // Cross-cluster traffic: accumulated pair mass between clusters, plus
    // the earliest gate index touching each cluster pair (temporal order).
    let mut cross: std::collections::HashMap<(u32, u32), (u64, u32)> =
        std::collections::HashMap::new();
    for (&(a, b), &w) in &iw.pair {
        let (ca, cb) = (cluster_of[a as usize], cluster_of[b as usize]);
        if ca == cb || ca == u32::MAX || cb == u32::MAX {
            continue;
        }
        let key = (ca.min(cb), ca.max(cb));
        let first = iw.first_gate[&(a, b)];
        let entry = cross.entry(key).or_insert((0, first));
        entry.0 += w;
        entry.1 = entry.1.min(first);
    }
    if cross.is_empty() {
        return seed; // clusters never talk: the seed is already optimal
    }
    // Placement circuit: one logical qubit per cluster; each cluster pair
    // contributes 1 + log₂(mass) CX rounds (capped), emitted round-robin
    // in temporal order so heavy pairs pull harder without serializing.
    let mut pairs: Vec<((u32, u32), u64, u32)> =
        cross.into_iter().map(|(p, (w, t))| (p, w, t)).collect();
    pairs.sort_by_key(|&(p, _, t)| (t, p));
    let mut placement = Circuit::new(m);
    for round in 0..MAX_PLACEMENT_ROUNDS {
        for &((ca, cb), w, _) in &pairs {
            let reps = (64 - w.leading_zeros()).min(MAX_PLACEMENT_ROUNDS);
            if round < reps {
                placement.cx(ca, cb);
            }
        }
    }
    // The placement circuit is tiny but perfectly periodic (round-robin
    // CX repetitions) — exactly the shape whose affine lifting compresses
    // well yet whose Presburger closure fixpoint explodes. The exact
    // graph engine is instant at this size, so force it.
    let pipeline = MappingPipeline::new(
        FixedLayoutPass::new(Layout::from_assignment(&seed, k)),
        QlosureRoutingPass::new(config.subroute.clone()),
    )
    .with_analysis(DependenceWeightsPass::new(WeightMode::Graph));
    // The quotient's distance matrix flows through the shared
    // per-device cache here (`MappingPipeline::run` → `shared_distances`).
    match pipeline.run(&placement, &rm.quotient) {
        Ok(outcome) => outcome.result.final_layout,
        Err(_) => seed, // oversized/degenerate: keep the seed
    }
}

/// Expands a cluster→region assignment into a full logical→physical
/// [`Layout`].
///
/// Clusters claim slots inside their region in BFS order (heaviest
/// cluster first, heaviest qubit first); members that do not fit spill to
/// the nearest region (quotient BFS order) with free capacity, and
/// unclustered logical qubits park on the leftover slots — so the
/// assignment is total and injective whenever the circuit fits the
/// device.
pub fn build_layout(
    rm: &RegionMap,
    clusters: &[Cluster],
    iw: &InteractionWeights,
    assignment_c2r: &[u32],
    n_logical: usize,
    n_physical: usize,
) -> Layout {
    let mut free: Vec<VecDeque<u32>> = rm
        .regions
        .iter()
        .map(|r| r.qubits.iter().copied().collect())
        .collect();
    let mut assignment = vec![u32::MAX; n_logical];
    // Heaviest cluster claims first (ties toward smaller index).
    let mut order: Vec<usize> = (0..clusters.len()).collect();
    order.sort_by_key(|&c| (std::cmp::Reverse(clusters[c].weight), c));
    let mut spill: Vec<(u32, u32)> = Vec::new(); // (logical, home region)
    for c in order {
        let r = assignment_c2r[c] as usize;
        let mut members = clusters[c].qubits.clone();
        members.sort_by_key(|&q| (std::cmp::Reverse(iw.qubit[q as usize]), q));
        for q in members {
            match free[r].pop_front() {
                Some(p) => assignment[q as usize] = p,
                None => spill.push((q, r as u32)),
            }
        }
    }
    // Spilled members take the nearest free slot, walking the quotient
    // breadth-first from the cluster's home region.
    for (q, home) in spill {
        let slot = nearest_free_slot(rm, &mut free, home);
        assignment[q as usize] = slot.expect("device has at least as many qubits as the circuit");
    }
    // Unclustered logicals (idle or single-qubit-only) park on leftovers,
    // scanning regions in score-rank order.
    let mut leftovers: VecDeque<u32> = rm
        .rank
        .iter()
        .flat_map(|&r| std::mem::take(&mut free[r as usize]))
        .collect();
    for q in 0..n_logical {
        if assignment[q] == u32::MAX {
            assignment[q] = leftovers
                .pop_front()
                .expect("device has at least as many qubits as the circuit");
        }
    }
    Layout::from_assignment(&assignment, n_physical)
}

/// Pops the first free physical slot found by BFS over the quotient from
/// `home` (falling back to any region for disconnected quotients).
fn nearest_free_slot(rm: &RegionMap, free: &mut [VecDeque<u32>], home: u32) -> Option<u32> {
    let k = rm.n_regions();
    let mut seen = vec![false; k];
    let mut queue = VecDeque::from([home]);
    seen[home as usize] = true;
    while let Some(r) = queue.pop_front() {
        if let Some(p) = free[r as usize].pop_front() {
            return Some(p);
        }
        for &next in rm.quotient.neighbors(r) {
            if !seen[next as usize] {
                seen[next as usize] = true;
                queue.push_back(next);
            }
        }
    }
    // Disconnected quotient: scan everything.
    free.iter_mut().find_map(VecDeque::pop_front)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{cluster_index, cluster_qubits};
    use crate::coarsen::coarsen;
    use topology::backends;

    fn setup(
        circuit: &Circuit,
        budget: usize,
        device: &topology::CouplingGraph,
    ) -> (RegionMap, Vec<Cluster>, InteractionWeights, Vec<u32>) {
        let rm = coarsen(device, budget, None);
        let weights = vec![0u64; circuit.gates().len()];
        let iw = InteractionWeights::new(circuit, &weights);
        let caps: Vec<usize> = rm
            .rank
            .iter()
            .map(|&r| rm.regions[r as usize].len())
            .collect();
        let clusters = cluster_qubits(&iw, &caps);
        let index = cluster_index(&clusters, circuit.n_qubits());
        (rm, clusters, iw, index)
    }

    #[test]
    fn placement_keeps_talking_clusters_adjacent() {
        // 4 regions on a 4x4 grid (2x2 tiles); two chatty cluster pairs.
        let device = backends::square_grid(4, 4);
        let mut c = Circuit::new(8);
        for _ in 0..6 {
            c.cx(0, 1);
            c.cx(2, 3);
            c.cx(4, 5);
            c.cx(6, 7);
            c.cx(1, 4); // cluster {0,1,2,3} talks to {4,5,6,7}
        }
        let (rm, clusters, iw, index) = setup(&c, 4, &device);
        let config = HierConfig::default();
        let placed = place_clusters(&rm, &clusters, &iw, &index, &config);
        assert_eq!(placed.len(), clusters.len());
        // Every cluster landed on a distinct region.
        let mut sorted = placed.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), placed.len());
    }

    #[test]
    fn layout_is_total_and_injective() {
        let device = backends::square_grid(4, 4);
        let mut c = Circuit::new(16);
        for q in 0..15 {
            c.cx(q, q + 1);
        }
        let (rm, clusters, iw, index) = setup(&c, 4, &device);
        let placed = place_clusters(&rm, &clusters, &iw, &index, &HierConfig::default());
        let layout = build_layout(&rm, &clusters, &iw, &placed, 16, 16);
        let mut used = [false; 16];
        for l in 0..16u32 {
            let p = layout.phys(l);
            assert!(!used[p as usize], "slot {p} assigned twice");
            used[p as usize] = true;
        }
    }

    #[test]
    fn undersized_circuits_leave_slots_free() {
        let device = backends::square_grid(4, 4);
        let mut c = Circuit::new(5);
        c.cx(0, 1);
        c.cx(2, 3);
        // Qubit 4 is idle: parked on a leftover slot, still injective.
        let (rm, clusters, iw, index) = setup(&c, 4, &device);
        let placed = place_clusters(&rm, &clusters, &iw, &index, &HierConfig::default());
        let layout = build_layout(&rm, &clusters, &iw, &placed, 5, 16);
        let mut slots: Vec<u32> = (0..5).map(|l| layout.phys(l)).collect();
        slots.sort_unstable();
        slots.dedup();
        assert_eq!(slots.len(), 5);
    }

    #[test]
    fn oversized_cluster_spills_to_neighbor_regions() {
        // One giant cluster on a 2-region line: half must spill next door.
        let device = backends::line(8);
        let mut c = Circuit::new(8);
        for _ in 0..3 {
            for q in 0..7 {
                c.cx(q, q + 1);
            }
        }
        let rm = coarsen(&device, 4, None);
        let weights = vec![0u64; c.gates().len()];
        let iw = InteractionWeights::new(&c, &weights);
        // Force a single unbounded cluster.
        let clusters = cluster_qubits(&iw, &[8]);
        assert_eq!(clusters.len(), 1);
        let layout = build_layout(&rm, &clusters, &iw, &[rm.rank[0]], 8, 8);
        let mut used: Vec<u32> = (0..8).map(|l| layout.phys(l)).collect();
        used.sort_unstable();
        used.dedup();
        assert_eq!(used.len(), 8, "spill must stay injective and total");
    }
}
