//! The bounded, content-keyed memo of routed sub-circuit fragments.
//!
//! A fragment's routing plan — the SWAP sequence the flat router inserts
//! to execute an intra-region run of gates — is a pure function of the
//! region's local adjacency, the fragment's gate stream (in region-local
//! slot indices, which bake in the entry layout) and the sub-router
//! configuration. The memo keys on exactly that content, per the
//! workspace cache-invalidation rule: nothing is ever invalidated in
//! place, a different fragment is a different key, and the store is
//! bounded with FIFO eviction. Identical QUEKO instances re-routed in a
//! warm process replay cached plans instead of re-running the router.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Maximum number of routed fragments retained. Fragments are small (a
/// SWAP list), so the bound is generous enough that a full bench roster
/// fits, while adversarial streams stay bounded.
const CAPACITY: usize = 1024;

/// One gate of a fragment in canonical form: kind name, region-local
/// operand slots, parameter bit patterns. Exact content — two fragments
/// collide only if they are the same computation.
pub type FragmentGate = (String, Vec<u32>, Vec<u64>);

/// Content key of one routed fragment.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct FragmentKey {
    /// Region size (local qubit count).
    pub n_local: u32,
    /// Region adjacency as sorted local edges. Shared behind an `Arc`
    /// (hash/equality delegate to the contents) so the hot routing loop
    /// builds each region's edge list once per run, not per fragment.
    pub edges: Arc<Vec<(u32, u32)>>,
    /// The fragment's gate stream over local slots (the entry layout is
    /// the identity over slots, so it is implicit in the operands).
    pub gates: Vec<FragmentGate>,
    /// Canonical rendering of the sub-router configuration, so two
    /// differently-tuned hierarchical mappers never share a plan (Rust's
    /// float formatting round-trips exactly, so this is content-exact).
    pub config: String,
}

/// A routed fragment: the local SWAPs the sub-router inserted, in
/// emission order. Replaying them (executing ready gates greedily in
/// between) reproduces the sub-routing exactly.
pub type SwapPlan = Arc<Vec<(u32, u32)>>;

/// The bounded fragment memo; the routing pass uses the process-wide
/// instance (whose counters [`subroute_memo_stats`] reports), tests use
/// private instances.
pub struct SubrouteMemo {
    inner: Mutex<MemoInner>,
    hits: AtomicU64,
    misses: AtomicU64,
}

struct MemoInner {
    plans: HashMap<FragmentKey, SwapPlan>,
    order: VecDeque<FragmentKey>,
}

impl SubrouteMemo {
    /// An empty memo.
    pub fn new() -> Self {
        SubrouteMemo {
            inner: Mutex::new(MemoInner {
                plans: HashMap::new(),
                order: VecDeque::new(),
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The plan for `key`, computing it with `f` on a miss. The compute
    /// runs outside the memo lock; racing threads may duplicate the work,
    /// but the plan is a pure function of the key so whichever insertion
    /// lands first wins and every caller sees identical content.
    pub fn get_or_compute(
        &self,
        key: FragmentKey,
        f: impl FnOnce() -> Vec<(u32, u32)>,
    ) -> SwapPlan {
        if let Some(hit) = self
            .inner
            .lock()
            .expect("subroute memo poisoned")
            .plans
            .get(&key)
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return hit.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let plan: SwapPlan = Arc::new(f());
        let mut inner = self.inner.lock().expect("subroute memo poisoned");
        if !inner.plans.contains_key(&key) {
            if inner.order.len() >= CAPACITY {
                if let Some(evicted) = inner.order.pop_front() {
                    inner.plans.remove(&evicted);
                }
            }
            inner.order.push_back(key.clone());
            inner.plans.insert(key, plan.clone());
        }
        plan
    }

    /// `(hits, misses)` so far. A miss is an actual sub-routing run; a
    /// hit replays a cached plan.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

impl Default for SubrouteMemo {
    fn default() -> Self {
        SubrouteMemo::new()
    }
}

static GLOBAL: OnceLock<SubrouteMemo> = OnceLock::new();

/// The process-wide fragment memo shared by every `HierRoutingPass`.
pub fn global() -> &'static SubrouteMemo {
    GLOBAL.get_or_init(SubrouteMemo::new)
}

/// `(hits, misses)` of the process-wide fragment memo — surfaced in
/// service stats responses and the `hier_scaling` bench report.
pub fn subroute_memo_stats() -> (u64, u64) {
    global().stats()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(tag: u32) -> FragmentKey {
        FragmentKey {
            n_local: 4,
            edges: Arc::new(vec![(0, 1), (1, 2), (2, 3)]),
            gates: vec![("cx".to_string(), vec![0, tag], Vec::new())],
            config: "default".to_string(),
        }
    }

    #[test]
    fn memo_computes_once_per_key() {
        let memo = SubrouteMemo::new();
        let mut computes = 0;
        for _ in 0..3 {
            let plan = memo.get_or_compute(key(3), || {
                computes += 1;
                vec![(0, 1), (1, 2)]
            });
            assert_eq!(*plan, vec![(0, 1), (1, 2)]);
        }
        assert_eq!(computes, 1);
        assert_eq!(memo.stats(), (2, 1));
    }

    #[test]
    fn distinct_fragments_do_not_collide() {
        let memo = SubrouteMemo::new();
        let a = memo.get_or_compute(key(3), || vec![(0, 1)]);
        let b = memo.get_or_compute(key(2), || vec![(2, 3)]);
        assert_ne!(*a, *b);
        assert_eq!(memo.stats(), (0, 2));
    }

    #[test]
    fn eviction_bounds_the_store() {
        let memo = SubrouteMemo::new();
        for i in 0..(CAPACITY as u32 + 5) {
            memo.get_or_compute(key(i), || vec![(i, i + 1)]);
        }
        // The oldest key was evicted: recomputation happens.
        let mut recomputed = false;
        memo.get_or_compute(key(0), || {
            recomputed = true;
            vec![(0, 1)]
        });
        assert!(recomputed);
    }

    #[test]
    fn concurrent_lookups_agree_on_content() {
        let memo = SubrouteMemo::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for round in 0..20u32 {
                        let plan = memo.get_or_compute(key(round % 4), || {
                            vec![((round % 4), (round % 4) + 1)]
                        });
                        assert_eq!(plan[0].1, plan[0].0 + 1);
                    }
                });
            }
        });
        let (hits, misses) = memo.stats();
        assert_eq!(hits + misses, 8 * 20);
        assert!(misses >= 4, "each key computed at least once");
    }
}
