//! The bounded, content-keyed memo of routed sub-circuit fragments —
//! tier 0 of the two-tier canonical plan store.
//!
//! A fragment's routing plan — the SWAP sequence the flat router inserts
//! to execute an intra-region run of gates — is a pure function of the
//! region's local adjacency, the fragment's gate stream and the
//! sub-router configuration. Since PR 8 the memo keys on the fragment's
//! *canonical form* ([`crate::canon`]): slots relabeled to first-use
//! order, adjacency renumbered, so structurally isomorphic fragments
//! from different requests, users, or qubit labelings share one plan.
//! Plans are computed and stored in canonical slots and pulled back
//! through the relabeling at replay, which keeps every stored plan a
//! pure function of its key — the invariant behind bit-for-bit
//! thread-count identity and cross-process reuse.
//!
//! Per the workspace cache-invalidation rule nothing is invalidated in
//! place: a different fragment is a different key, the store is bounded
//! with FIFO eviction, and hit/miss counters flow to service stats.
//! Hits are tiered: an *exact* hit re-sees a byte-identical original
//! fragment, a *canonical* hit reuses a plan across isomorphic variants,
//! and a *disk* hit loads a plan another process persisted via the
//! optional [`crate::store::PlanStore`] tier.

use crate::store::{fnv1a, PlanStore};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Maximum number of routed fragments retained. Fragments are small (a
/// SWAP list), so the bound is generous enough that a full bench roster
/// fits, while adversarial streams stay bounded.
const CAPACITY: usize = 1024;

/// Per-entry bound on tracked exact-form hashes: enough to tell exact
/// from canonical hits on real rosters without letting one popular plan
/// accumulate unbounded bookkeeping.
const EXACT_TRACK: usize = 64;

/// One gate of a fragment: interned kind name, region-local operand
/// slots, parameter bit patterns. Exact content — two fragments collide
/// only if they are the same computation. The kind is a shared
/// [`Arc<str>`] from [`crate::canon::intern`], not a fresh `String` per
/// gate.
pub type FragmentGate = (Arc<str>, Vec<u32>, Vec<u64>);

/// Content key of one routed fragment, in canonical form (construct via
/// [`crate::canon::canonicalize`]; hand-built keys are only canonical if
/// their gates already use first-use slot order).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct FragmentKey {
    /// Region size (local qubit count).
    pub n_local: u32,
    /// Region adjacency as sorted canonical-slot edges.
    pub edges: Vec<(u32, u32)>,
    /// The fragment's gate stream over canonical slots.
    pub gates: Vec<FragmentGate>,
    /// Canonical rendering of the sub-router configuration, interned so
    /// the hot loop shares one allocation. Two differently-tuned
    /// hierarchical mappers never share a plan (Rust's float formatting
    /// round-trips exactly, so this is content-exact).
    pub config: Arc<str>,
}

/// A routed fragment: the canonical-slot SWAPs the sub-router inserted,
/// in emission order. Replaying them through the fragment's
/// `canonical→local` map (executing ready gates greedily in between)
/// reproduces the sub-routing exactly.
pub type SwapPlan = Arc<Vec<(u32, u32)>>;

/// Deterministic byte serialization of a [`FragmentKey`] — the disk
/// tier's record key, compared in full on load (never just a hash).
pub fn key_bytes(key: &FragmentKey) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + key.gates.len() * 16);
    out.extend_from_slice(&key.n_local.to_le_bytes());
    out.extend_from_slice(&(key.edges.len() as u32).to_le_bytes());
    for &(a, b) in &key.edges {
        out.extend_from_slice(&a.to_le_bytes());
        out.extend_from_slice(&b.to_le_bytes());
    }
    out.extend_from_slice(&(key.gates.len() as u32).to_le_bytes());
    for (kind, operands, params) in &key.gates {
        out.extend_from_slice(&(kind.len() as u32).to_le_bytes());
        out.extend_from_slice(kind.as_bytes());
        out.extend_from_slice(&(operands.len() as u32).to_le_bytes());
        for &q in operands {
            out.extend_from_slice(&q.to_le_bytes());
        }
        out.extend_from_slice(&(params.len() as u32).to_le_bytes());
        for &p in params {
            out.extend_from_slice(&p.to_le_bytes());
        }
    }
    out.extend_from_slice(&(key.config.len() as u32).to_le_bytes());
    out.extend_from_slice(key.config.as_bytes());
    out
}

/// FNV-1a fingerprint of a fragment's *pre-canonical* content — what
/// tells an exact hit (same original labeling seen again) from a
/// canonical one (isomorphic variant sharing the plan).
pub fn exact_fragment_hash(
    n_local: u32,
    edges: &[(u32, u32)],
    gates: &[FragmentGate],
    config: &str,
) -> u64 {
    let key = FragmentKey {
        n_local,
        edges: edges.to_vec(),
        gates: gates.to_vec(),
        config: Arc::from(config),
    };
    fnv1a(&key_bytes(&key))
}

/// Which tier satisfied one plan lookup — the per-lookup counterpart of
/// the aggregate [`PlanStats`] counters, surfaced as a span annotation on
/// the fragment's trace span.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlanTier {
    /// Tier 0, byte-identical original fragment seen before.
    Exact,
    /// Tier 0, isomorphic variant sharing the canonical plan.
    Canonical,
    /// Tier 1, loaded from the disk store.
    Disk,
    /// Every tier missed; the sub-router actually ran.
    Miss,
}

impl PlanTier {
    /// Stable lowercase label (`exact`/`canonical`/`disk`/`miss`).
    pub fn as_str(self) -> &'static str {
        match self {
            PlanTier::Exact => "exact",
            PlanTier::Canonical => "canonical",
            PlanTier::Disk => "disk",
            PlanTier::Miss => "miss",
        }
    }
}

/// Tiered counters of the plan store, surfaced through service `stats`
/// and `metrics` as additive fields (absent means zero).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlanStats {
    /// Tier-0 hits where the original fragment was byte-identical to a
    /// previously seen one.
    pub exact_hits: u64,
    /// Tier-0 hits earned by canonicalization alone: a structurally
    /// isomorphic fragment under a different labeling shared the plan.
    pub canonical_hits: u64,
    /// Plans loaded from the disk tier (persisted by this or another
    /// process).
    pub disk_hits: u64,
    /// Plans appended to the disk tier after a fresh compute.
    pub disk_writes: u64,
    /// Actual sub-routing runs (every tier missed).
    pub misses: u64,
}

/// The bounded fragment memo plus the optional disk tier behind it; the
/// routing pass uses the process-wide instance (whose counters
/// [`plan_store_stats`] reports), tests use private instances.
pub struct SubrouteMemo {
    inner: Mutex<MemoInner>,
    store: Mutex<Option<PlanStore>>,
    exact_hits: AtomicU64,
    canonical_hits: AtomicU64,
    disk_hits: AtomicU64,
    disk_writes: AtomicU64,
    misses: AtomicU64,
}

struct Entry {
    plan: SwapPlan,
    /// Exact-form hashes of original fragments seen for this canonical
    /// key, bounded by [`EXACT_TRACK`].
    exact: HashSet<u64>,
}

struct MemoInner {
    plans: HashMap<FragmentKey, Entry>,
    order: VecDeque<FragmentKey>,
}

impl MemoInner {
    fn insert(&mut self, key: FragmentKey, plan: SwapPlan, exact_hash: u64) {
        if self.order.len() >= CAPACITY {
            if let Some(evicted) = self.order.pop_front() {
                self.plans.remove(&evicted);
            }
        }
        self.order.push_back(key.clone());
        let mut exact = HashSet::new();
        exact.insert(exact_hash);
        self.plans.insert(key, Entry { plan, exact });
    }
}

impl SubrouteMemo {
    /// An empty memo with no disk tier.
    pub fn new() -> Self {
        SubrouteMemo {
            inner: Mutex::new(MemoInner {
                plans: HashMap::new(),
                order: VecDeque::new(),
            }),
            store: Mutex::new(None),
            exact_hits: AtomicU64::new(0),
            canonical_hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            disk_writes: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Attaches (or replaces) the disk tier. Subsequent tier-0 misses
    /// consult the store before computing and persist fresh plans.
    pub fn attach_store(&self, store: PlanStore) {
        *self.store.lock().expect("plan store poisoned") = Some(store);
    }

    /// The plan for canonical `key`, computing it with `f` (which
    /// receives the canonical key and must route the canonical fragment)
    /// on a full miss. `exact_hash` fingerprints the *pre-canonical*
    /// fragment ([`exact_fragment_hash`]) and only affects hit-tier
    /// accounting. The compute runs outside the memo lock; racing
    /// threads may duplicate the work, but the plan is a pure function
    /// of the key so whichever insertion lands first wins and every
    /// caller sees identical content.
    pub fn get_or_compute(
        &self,
        key: FragmentKey,
        exact_hash: u64,
        f: impl FnOnce(&FragmentKey) -> Vec<(u32, u32)>,
    ) -> SwapPlan {
        self.get_or_compute_tiered(key, exact_hash, f).0
    }

    /// [`SubrouteMemo::get_or_compute`] that also reports which tier
    /// satisfied *this* lookup — the aggregate counters cannot attribute
    /// a decision to one fragment, which per-job tracing needs.
    pub fn get_or_compute_tiered(
        &self,
        key: FragmentKey,
        exact_hash: u64,
        f: impl FnOnce(&FragmentKey) -> Vec<(u32, u32)>,
    ) -> (SwapPlan, PlanTier) {
        {
            let mut inner = self.inner.lock().expect("subroute memo poisoned");
            if let Some(entry) = inner.plans.get_mut(&key) {
                let tier = if entry.exact.contains(&exact_hash) {
                    self.exact_hits.fetch_add(1, Ordering::Relaxed);
                    PlanTier::Exact
                } else {
                    self.canonical_hits.fetch_add(1, Ordering::Relaxed);
                    if entry.exact.len() < EXACT_TRACK {
                        entry.exact.insert(exact_hash);
                    }
                    PlanTier::Canonical
                };
                return (entry.plan.clone(), tier);
            }
        }
        // Tier 1: the disk store, consulted lazily on a tier-0 miss.
        {
            let mut store = self.store.lock().expect("plan store poisoned");
            if let Some(store) = store.as_mut() {
                if let Some(loaded) = store.load(&key_bytes(&key)) {
                    self.disk_hits.fetch_add(1, Ordering::Relaxed);
                    let plan: SwapPlan = Arc::new(loaded);
                    let mut inner = self.inner.lock().expect("subroute memo poisoned");
                    if let Some(entry) = inner.plans.get(&key) {
                        return (entry.plan.clone(), PlanTier::Disk);
                    }
                    inner.insert(key, plan.clone(), exact_hash);
                    return (plan, PlanTier::Disk);
                }
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let plan: SwapPlan = Arc::new(f(&key));
        let newly_inserted = {
            let mut inner = self.inner.lock().expect("subroute memo poisoned");
            if inner.plans.contains_key(&key) {
                false
            } else {
                inner.insert(key.clone(), plan.clone(), exact_hash);
                true
            }
        };
        if newly_inserted {
            let mut store = self.store.lock().expect("plan store poisoned");
            if let Some(store) = store.as_mut() {
                if store.append(&key_bytes(&key), &plan) {
                    self.disk_writes.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        (plan, PlanTier::Miss)
    }

    /// `(hits, misses)` so far — the pre-PR-8 shape, where a hit is any
    /// replay that skipped the sub-router (exact, canonical, or disk)
    /// and a miss is an actual sub-routing run.
    pub fn stats(&self) -> (u64, u64) {
        let p = self.plan_stats();
        (p.exact_hits + p.canonical_hits + p.disk_hits, p.misses)
    }

    /// The full tiered counters.
    pub fn plan_stats(&self) -> PlanStats {
        PlanStats {
            exact_hits: self.exact_hits.load(Ordering::Relaxed),
            canonical_hits: self.canonical_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            disk_writes: self.disk_writes.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

impl Default for SubrouteMemo {
    fn default() -> Self {
        SubrouteMemo::new()
    }
}

static GLOBAL: OnceLock<SubrouteMemo> = OnceLock::new();

/// The process-wide fragment memo shared by every `HierRoutingPass`.
pub fn global() -> &'static SubrouteMemo {
    GLOBAL.get_or_init(SubrouteMemo::new)
}

/// Attaches a disk tier under `dir` to the process-wide memo — what
/// `qlosured --plan-store <dir>` calls at startup.
///
/// # Errors
///
/// Only directory creation can fail; a damaged store *file* degrades to
/// warnings at scan time.
pub fn configure_plan_store(dir: impl AsRef<std::path::Path>) -> std::io::Result<()> {
    global().attach_store(PlanStore::open(dir)?);
    Ok(())
}

/// `(hits, misses)` of the process-wide fragment memo — surfaced in
/// service stats responses and the `hier_scaling` bench report.
pub fn subroute_memo_stats() -> (u64, u64) {
    global().stats()
}

/// Tiered plan-store counters of the process-wide memo.
pub fn plan_store_stats() -> PlanStats {
    global().plan_stats()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canon::intern;

    fn key(tag: u32) -> FragmentKey {
        FragmentKey {
            n_local: 4,
            edges: vec![(0, 1), (1, 2), (2, 3)],
            gates: vec![(intern("cx"), vec![0, tag], Vec::new())],
            config: intern("default"),
        }
    }

    #[test]
    fn memo_computes_once_per_key() {
        let memo = SubrouteMemo::new();
        let mut computes = 0;
        for _ in 0..3 {
            let plan = memo.get_or_compute(key(3), 7, |_| {
                computes += 1;
                vec![(0, 1), (1, 2)]
            });
            assert_eq!(*plan, vec![(0, 1), (1, 2)]);
        }
        assert_eq!(computes, 1);
        assert_eq!(memo.stats(), (2, 1));
    }

    #[test]
    fn hit_tiers_distinguish_exact_from_canonical() {
        let memo = SubrouteMemo::new();
        // First sight: a miss, seeding exact hash 7.
        memo.get_or_compute(key(3), 7, |_| vec![(0, 1)]);
        // Same original fragment again: exact hit.
        memo.get_or_compute(key(3), 7, |_| unreachable!());
        // Isomorphic variant (same canonical key, different original
        // labeling → different exact hash): canonical hit.
        memo.get_or_compute(key(3), 8, |_| unreachable!());
        // That variant repeats: now exact.
        memo.get_or_compute(key(3), 8, |_| unreachable!());
        let p = memo.plan_stats();
        assert_eq!(
            (p.exact_hits, p.canonical_hits, p.misses),
            (2, 1, 1),
            "{p:?}"
        );
    }

    #[test]
    fn tiered_lookup_reports_the_tier_that_served_it() {
        let dir = std::env::temp_dir().join(format!("qlosure-memo-tier-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let memo = SubrouteMemo::new();
        memo.attach_store(PlanStore::open(&dir).unwrap());
        let (_, t) = memo.get_or_compute_tiered(key(3), 7, |_| vec![(0, 1)]);
        assert_eq!(t, PlanTier::Miss);
        let (_, t) = memo.get_or_compute_tiered(key(3), 7, |_| unreachable!());
        assert_eq!(t, PlanTier::Exact);
        let (_, t) = memo.get_or_compute_tiered(key(3), 8, |_| unreachable!());
        assert_eq!(t, PlanTier::Canonical);
        // A fresh memo over the same dir: the disk tier serves it.
        let warm = SubrouteMemo::new();
        warm.attach_store(PlanStore::open(&dir).unwrap());
        let (_, t) = warm.get_or_compute_tiered(key(3), 9, |_| unreachable!());
        assert_eq!(t, PlanTier::Disk);
        assert_eq!(PlanTier::Disk.as_str(), "disk");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn distinct_fragments_do_not_collide() {
        let memo = SubrouteMemo::new();
        let a = memo.get_or_compute(key(3), 1, |_| vec![(0, 1)]);
        let b = memo.get_or_compute(key(2), 2, |_| vec![(2, 3)]);
        assert_ne!(*a, *b);
        assert_eq!(memo.stats(), (0, 2));
    }

    #[test]
    fn eviction_bounds_the_store() {
        let memo = SubrouteMemo::new();
        for i in 0..(CAPACITY as u32 + 5) {
            memo.get_or_compute(key(i), u64::from(i), |_| vec![(i, i + 1)]);
        }
        // The oldest key was evicted: recomputation happens.
        let mut recomputed = false;
        memo.get_or_compute(key(0), 0, |_| {
            recomputed = true;
            vec![(0, 1)]
        });
        assert!(recomputed);
    }

    #[test]
    fn concurrent_lookups_agree_on_content() {
        let memo = SubrouteMemo::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for round in 0..20u32 {
                        let plan =
                            memo.get_or_compute(key(round % 4), u64::from(round % 4), |_| {
                                vec![((round % 4), (round % 4) + 1)]
                            });
                        assert_eq!(plan[0].1, plan[0].0 + 1);
                    }
                });
            }
        });
        let (hits, misses) = memo.stats();
        assert_eq!(hits + misses, 8 * 20);
        assert!(misses >= 4, "each key computed at least once");
    }

    #[test]
    fn disk_tier_round_trips_across_memo_instances() {
        let dir = std::env::temp_dir().join(format!("qlosure-memo-disk-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cold = SubrouteMemo::new();
        cold.attach_store(PlanStore::open(&dir).unwrap());
        cold.get_or_compute(key(3), 7, |_| vec![(0, 1), (1, 2)]);
        let p = cold.plan_stats();
        assert_eq!((p.misses, p.disk_writes, p.disk_hits), (1, 1, 0), "{p:?}");
        // A fresh memo (fresh process, conceptually) over the same dir:
        // the plan loads from disk, no compute runs.
        let warm = SubrouteMemo::new();
        warm.attach_store(PlanStore::open(&dir).unwrap());
        let plan = warm.get_or_compute(key(3), 9, |_| unreachable!("disk tier must hit"));
        assert_eq!(*plan, vec![(0, 1), (1, 2)]);
        let p = warm.plan_stats();
        assert_eq!((p.misses, p.disk_writes, p.disk_hits), (0, 0, 1), "{p:?}");
        // And it now sits in tier 0: the next lookup is a memory hit.
        warm.get_or_compute(key(3), 9, |_| unreachable!());
        assert_eq!(warm.plan_stats().exact_hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn key_bytes_are_injective_over_field_boundaries() {
        // Length-prefixed fields: moving content across a boundary
        // changes the serialization.
        let a = key(3);
        let mut b = a.clone();
        b.gates[0].1 = vec![0];
        b.gates[0].2 = vec![3];
        assert_ne!(key_bytes(&a), key_bytes(&b));
        assert_ne!(
            exact_fragment_hash(a.n_local, &a.edges, &a.gates, &a.config),
            exact_fragment_hash(b.n_local, &b.edges, &b.gates, &b.config),
        );
    }
}
