//! Canonical fragment form: the abstraction that lets structurally
//! isomorphic fragments share one SWAP plan.
//!
//! A fragment is `(region adjacency, gate stream over region-local
//! slots, sub-router config)`. Two fragments from different requests,
//! users, or qubit labelings are *isomorphic* when some slot bijection
//! maps one's gate stream and adjacency onto the other's. The exact
//! memo key of PR 5 treats them as distinct; canonicalization maps both
//! to one representative:
//!
//! 1. **Used slots** are relabeled to *first-use order* in the gate
//!    stream — canonical slot 0 is the first operand of the first gate,
//!    and so on. Any slot permutation of the fragment relabels the gate
//!    stream identically, so the canonical gate stream is invariant.
//! 2. **Unused slots** (region qubits the sub-router may route through
//!    but no gate touches) are completed by a structural refinement:
//!    repeatedly assign the next canonical index to the unassigned
//!    vertex with the lexicographically smallest signature `(sorted
//!    already-canonical neighbor ids, degree, sorted neighbor-degree
//!    multiset)`. The signature is label-invariant, so the completion
//!    is too — up to graph automorphism, where any choice yields the
//!    *same* canonical edge set (the subsequent run is conjugated by
//!    the automorphism). Residual ties break toward the smaller
//!    original index, which keeps the map deterministic.
//! 3. The **adjacency** is renumbered under the full relabeling and
//!    sorted.
//!
//! The resulting [`FragmentKey`] is a pure, deterministic function of
//! the fragment content, idempotent on its own output, and invariant
//! under slot permutations ([`tests`] and the `hier_canonical_*`
//! properties pin all three). Plans are *computed in canonical slots*
//! (the sub-router routes the canonical circuit on the canonical
//! adjacency) and replayed through [`Canonical::to_local`], so a stored
//! plan is a pure function of its key — the invariant every tier of the
//! store (in-memory, speculative prefetch, disk) relies on for
//! bit-for-bit thread-count and cross-process determinism.

use crate::memo::{FragmentGate, FragmentKey};
use std::collections::HashSet;
use std::sync::{Arc, Mutex, OnceLock};

/// A canonicalized fragment: the content key plus the inverse
/// relabeling needed to replay a canonical-slot SWAP plan onto the real
/// region.
#[derive(Clone, Debug)]
pub struct Canonical {
    /// The canonical content key (relabeled gates, renumbered
    /// adjacency, config fingerprint).
    pub key: FragmentKey,
    /// `to_local[canonical_slot]` = the fragment's original
    /// region-local slot — the permutation a replay pulls plan SWAPs
    /// back through.
    pub to_local: Vec<u32>,
}

/// Canonicalizes a fragment: `edges` is the region adjacency over local
/// slots, `gates` the fragment's gate stream over the same slots (kinds
/// already interned), `config` the sub-router fingerprint. Pure and
/// deterministic; see the module docs for the invariants.
pub fn canonicalize(
    n_local: u32,
    edges: &[(u32, u32)],
    gates: &[FragmentGate],
    config: Arc<str>,
) -> Canonical {
    let n = n_local as usize;
    let mut canon_of = vec![u32::MAX; n];
    let mut to_local: Vec<u32> = Vec::with_capacity(n);
    // Pass 1: used slots in first-use order.
    for (_, operands, _) in gates {
        for &q in operands {
            if canon_of[q as usize] == u32::MAX {
                canon_of[q as usize] = to_local.len() as u32;
                to_local.push(q);
            }
        }
    }
    // Pass 2: structural completion of unused slots.
    if to_local.len() < n {
        let mut adjacency: Vec<Vec<u32>> = vec![Vec::new(); n];
        for &(a, b) in edges {
            adjacency[a as usize].push(b);
            adjacency[b as usize].push(a);
        }
        // Label-invariant per-vertex signature pieces.
        let degree: Vec<u32> = adjacency.iter().map(|nbrs| nbrs.len() as u32).collect();
        let neighbor_degrees: Vec<Vec<u32>> = adjacency
            .iter()
            .map(|nbrs| {
                let mut ds: Vec<u32> = nbrs.iter().map(|&u| degree[u as usize]).collect();
                ds.sort_unstable();
                ds
            })
            .collect();
        while to_local.len() < n {
            let mut best: Option<(Vec<u32>, usize)> = None;
            for v in 0..n {
                if canon_of[v] != u32::MAX {
                    continue;
                }
                let mut anchors: Vec<u32> = adjacency[v]
                    .iter()
                    .filter(|&&u| canon_of[u as usize] != u32::MAX)
                    .map(|&u| canon_of[u as usize])
                    .collect();
                anchors.sort_unstable();
                // Vertices with no canonical neighbor yet sort last
                // (u32::MAX sentinel head), so growth stays anchored to
                // the already-labeled part whenever possible.
                let mut signature =
                    Vec::with_capacity(anchors.len() + neighbor_degrees[v].len() + 2);
                signature.push(if anchors.is_empty() { u32::MAX } else { 0 });
                signature.extend_from_slice(&anchors);
                signature.push(degree[v]);
                signature.extend_from_slice(&neighbor_degrees[v]);
                // Ties break toward the smaller original index: a
                // deterministic choice, and canonical-key-invariant
                // whenever the tied vertices are automorphic (see
                // module docs).
                let better = match &best {
                    None => true,
                    Some((sig, _)) => signature < *sig,
                };
                if better {
                    best = Some((signature, v));
                }
            }
            let (_, v) = best.expect("unassigned vertex exists");
            canon_of[v] = to_local.len() as u32;
            to_local.push(v as u32);
        }
    }
    // Pass 3: renumber the adjacency and the gate stream.
    let mut canon_edges: Vec<(u32, u32)> = edges
        .iter()
        .map(|&(a, b)| {
            let (x, y) = (canon_of[a as usize], canon_of[b as usize]);
            (x.min(y), x.max(y))
        })
        .collect();
    canon_edges.sort_unstable();
    let canon_gates: Vec<FragmentGate> = gates
        .iter()
        .map(|(kind, operands, params)| {
            (
                kind.clone(),
                operands.iter().map(|&q| canon_of[q as usize]).collect(),
                params.clone(),
            )
        })
        .collect();
    Canonical {
        key: FragmentKey {
            n_local,
            edges: canon_edges,
            gates: canon_gates,
            config,
        },
        to_local,
    }
}

/// The process-wide gate-kind string interner: one shared `Arc<str>`
/// per distinct kind name instead of a fresh `String` per gate in the
/// hot routing loop. Lookup by `&str` allocates only on first sight of
/// a name (the gate alphabet is tiny and effectively static, so the
/// table needs no bound).
pub fn intern(name: &str) -> Arc<str> {
    static TABLE: OnceLock<Mutex<HashSet<Arc<str>>>> = OnceLock::new();
    let table = TABLE.get_or_init(|| Mutex::new(HashSet::new()));
    let mut table = table.lock().expect("intern table poisoned");
    if let Some(hit) = table.get(name) {
        return hit.clone();
    }
    let fresh: Arc<str> = Arc::from(name);
    table.insert(fresh.clone());
    fresh
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gate(kind: &str, operands: &[u32]) -> FragmentGate {
        (intern(kind), operands.to_vec(), Vec::new())
    }

    /// Applies slot permutation `perm` (original -> new) to a fragment.
    fn permute(
        perm: &[u32],
        edges: &[(u32, u32)],
        gates: &[FragmentGate],
    ) -> (Vec<(u32, u32)>, Vec<FragmentGate>) {
        let mut new_edges: Vec<(u32, u32)> = edges
            .iter()
            .map(|&(a, b)| {
                let (x, y) = (perm[a as usize], perm[b as usize]);
                (x.min(y), x.max(y))
            })
            .collect();
        new_edges.sort_unstable();
        let new_gates = gates
            .iter()
            .map(|(kind, operands, params)| {
                (
                    kind.clone(),
                    operands.iter().map(|&q| perm[q as usize]).collect(),
                    params.clone(),
                )
            })
            .collect();
        (new_edges, new_gates)
    }

    #[test]
    fn interning_shares_one_allocation_per_name() {
        let a = intern("cx");
        let b = intern("cx");
        assert!(Arc::ptr_eq(&a, &b));
        assert_ne!(intern("cz"), a);
    }

    #[test]
    fn first_use_order_relabels_the_gate_stream() {
        // Line 0-1-2-3; gates touch 2 then 0, so canonical 0 = slot 2.
        let edges = vec![(0, 1), (1, 2), (2, 3)];
        let gates = vec![gate("cx", &[2, 0])];
        let c = canonicalize(4, &edges, &gates, intern("cfg"));
        assert_eq!(c.key.gates[0].1, vec![0, 1]);
        assert_eq!(&c.to_local[..2], &[2, 0]);
        // Every slot gets exactly one canonical label.
        let mut sorted = c.to_local.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
    }

    #[test]
    fn slot_permutations_share_one_canonical_key() {
        // A 2x3 grid region with a two-gate fragment, under every
        // rotation of a slot permutation.
        let edges = vec![(0, 1), (1, 2), (0, 3), (1, 4), (2, 5), (3, 4), (4, 5)];
        let gates = vec![gate("cx", &[1, 4]), gate("h", &[5]), gate("cx", &[5, 2])];
        let base = canonicalize(6, &edges, &gates, intern("cfg"));
        for shift in 1..6u32 {
            let perm: Vec<u32> = (0..6).map(|i| (i + shift) % 6).collect();
            let (p_edges, p_gates) = permute(&perm, &edges, &gates);
            let c = canonicalize(6, &p_edges, &p_gates, intern("cfg"));
            assert_eq!(c.key, base.key, "shift {shift} changed the canonical key");
        }
    }

    #[test]
    fn canonicalization_is_idempotent() {
        let edges = vec![(0, 1), (1, 2), (2, 3), (3, 4), (0, 4), (1, 3)];
        let gates = vec![gate("cx", &[3, 1]), gate("cx", &[1, 0])];
        let once = canonicalize(5, &edges, &gates, intern("cfg"));
        let twice = canonicalize(5, &once.key.edges, &once.key.gates, intern("cfg"));
        assert_eq!(once.key, twice.key);
        // Re-canonicalizing the canonical form is the identity map.
        assert_eq!(twice.to_local, (0..5).collect::<Vec<u32>>());
    }

    #[test]
    fn to_local_inverts_the_relabeling_onto_the_plan() {
        // A canonical-slot SWAP pulled back through to_local lands on
        // the original slots of the pair it was computed for.
        let edges = vec![(0, 1), (1, 2)];
        let gates = vec![gate("cx", &[2, 0])];
        let c = canonicalize(3, &edges, &gates, intern("cfg"));
        // Canonical edge (0, x) exists where x = canonical label of
        // slot 1 (the middle): translation maps it back to (2, 1) or
        // (1, 2) territory — i.e. a real region edge.
        for &(a, b) in &c.key.edges {
            let (la, lb) = (c.to_local[a as usize], c.to_local[b as usize]);
            let edge = (la.min(lb), la.max(lb));
            assert!(edges.contains(&edge), "{edge:?} is not a region edge");
        }
    }

    #[test]
    fn config_distinguishes_otherwise_identical_fragments() {
        let edges = vec![(0, 1)];
        let gates = vec![gate("cx", &[0, 1])];
        let a = canonicalize(2, &edges, &gates, intern("cfg-a"));
        let b = canonicalize(2, &edges, &gates, intern("cfg-b"));
        assert_ne!(a.key, b.key);
    }
}
