//! # qlosure-hier — hierarchical partitioned mapping
//!
//! Flat mappers route the whole circuit against the whole device, so cost
//! grows with `n_qubits² × n_gates` and 1000+-qubit devices stop being
//! interactive. This crate decomposes the problem along both axes:
//!
//! 1. **Device coarsening** ([`coarsen`]): the coupling graph is
//!    partitioned into connected regions (lattice-aware seeds for
//!    `grid:`/`heavy-hex:` back-ends, greedy BFS growth elsewhere) and a
//!    quotient [`RegionMap::quotient`] region graph is derived, whose
//!    distance matrix flows through the shared per-device cache.
//! 2. **Circuit clustering** ([`cluster_qubits`]): logical qubits are
//!    grouped on their interaction graph, weighted by the `affine`
//!    transitive-dependence ω-mass.
//! 3. **Region placement** ([`place_clusters`]): clusters are assigned to
//!    regions by solving the mapping problem *on the region graph itself*
//!    — a recursive [`qlosure::MappingPipeline`] run — ranked by a
//!    noise-aware region score.
//! 4. **Memoized sub-routing** ([`HierRoutingPass`]): intra-region gate
//!    runs are routed by the flat pipeline on the region subgraph, their
//!    SWAP plans cached in a bounded memo keyed on the fragment's
//!    *canonical form* ([`canonicalize`]) so isomorphic fragments under
//!    any qubit labeling share one plan ([`plan_store_stats`]), with an
//!    optional disk tier ([`PlanStore`], attached via
//!    [`configure_plan_store`]) persisting plans across processes;
//!    cross-region gates are stitched with boundary SWAP chains.
//!
//! Everything ships as pass compositions per the workspace rule:
//! [`RegionAnalysisPass`] (analysis artifact), [`HierLayoutPass`],
//! [`HierRoutingPass`], composed into [`HierMapper`] which implements the
//! shared [`qlosure::Mapper`] interface.
//!
//! # Quickstart
//!
//! ```
//! use hier::HierMapper;
//! use qlosure::Mapper;
//! use circuit::Circuit;
//! use topology::backends;
//!
//! let device = backends::square_grid(8, 8);
//! let mut c = Circuit::new(64);
//! for q in 0..63 {
//!     c.cx(q, q + 1);
//! }
//! let result = HierMapper::default().map(&c, &device);
//! circuit::verify_routing(
//!     &c,
//!     &result.routed,
//!     &|a, b| device.is_adjacent(a, b),
//!     &result.initial_layout,
//! )
//! .unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod canon;
mod cluster;
mod coarsen;
mod memo;
mod pass;
mod place;
mod store;

pub use canon::{canonicalize, intern, Canonical};
pub use cluster::{cluster_index, cluster_qubits, Cluster, InteractionWeights};
pub use coarsen::{
    auto_budget, coarsen, structured_assignment, structured_seeds, Region, RegionMap,
};
pub use memo::{
    configure_plan_store, exact_fragment_hash, key_bytes, plan_store_stats, subroute_memo_stats,
    FragmentGate, FragmentKey, PlanStats, PlanTier, SubrouteMemo,
};
pub use pass::{
    auto_prefers_hier, HierConfig, HierLayoutPass, HierMapper, HierRoutingPass, RegionAnalysisPass,
    AUTO_THRESHOLD,
};
pub use place::{build_layout, place_clusters};
pub use store::{PlanStore, PlanStoreConfig, StoreWarning, STORE_VERSION};
