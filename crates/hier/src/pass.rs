//! The hierarchical pass composition: `RegionAnalysisPass` →
//! `HierLayoutPass` → `HierRoutingPass`, composed into [`HierMapper`].
//!
//! Per the workspace pass-pipeline rule, the hierarchical mapper is not a
//! new hand-rolled routing loop: the region analysis is an
//! [`AnalysisPass`] producing a typed [`RegionMap`] artifact, the layout
//! stage is a [`LayoutPass`], and the routing stage drives the shared
//! incremental [`RoutingState`] exclusively through its public mutation
//! primitives (`execute_ready`, `apply_swap`, `force_route`). Intra-region
//! work is delegated to the *flat* Qlosure pipeline on the region
//! subgraph — recursively reusing [`MappingPipeline`] — and the resulting
//! SWAP plans are memoized content-keyed in [`crate::memo`].

use crate::canon::{canonicalize, intern};
use crate::cluster::{cluster_index, cluster_qubits, InteractionWeights};
use crate::coarsen::{auto_budget, coarsen, RegionMap};
use crate::memo::{self, exact_fragment_hash, FragmentGate, FragmentKey};
use crate::place::{build_layout, place_clusters};
use affine::DependenceAnalysis;
use circuit::{Circuit, Gate, GateKind};
use engine::BatchEngine;
use qlosure::{
    AnalysisPass, Artifacts, DependenceWeightsPass, IdentityLayoutPass, Layout, LayoutPass, Mapper,
    MappingPipeline, MappingResult, PassContext, QlosureConfig, QlosureRoutingPass, RoutingPass,
    RoutingState,
};
use std::collections::HashSet;
use std::hash::{Hash, Hasher};
use std::sync::Arc;
use topology::NoiseModel;

/// Device size at which the `"auto"` service strategy switches from the
/// flat mapper to the hierarchical one: below this the flat router is
/// already fast and usually cheaper in SWAPs, above it the quadratic
/// candidate scans start to dominate.
pub const AUTO_THRESHOLD: usize = 512;

/// Whether the `"auto"` strategy picks the hierarchical mapper for a
/// device of `n_qubits` qubits.
pub fn auto_prefers_hier(n_qubits: usize) -> bool {
    n_qubits >= AUTO_THRESHOLD
}

/// Tuning knobs of the hierarchical mapper.
#[derive(Clone, Debug, Default)]
pub struct HierConfig {
    /// Region size budget; `None` picks [`auto_budget`] (√n clamped to
    /// [8, 128]).
    pub budget: Option<usize>,
    /// Optional calibration: region placement ranks regions by their
    /// noise-aware score instead of raw edge density.
    pub noise: Option<NoiseModel>,
    /// Configuration of the flat Qlosure router used for region placement
    /// and per-region sub-routing.
    pub subroute: QlosureConfig,
    /// Worker threads for speculative fragment prefetch: upcoming
    /// fragments anchored in *other* regions are sub-routed concurrently
    /// into the shared memo while the main thread replays strictly in
    /// program order. `None` reads `ENGINE_THREADS` (the engine crate's
    /// knob); `Some(1)` disables prefetch. Plans are pure functions of
    /// their content key, so the routed output is bit-for-bit identical
    /// at every thread count — the knob changes wall-clock time only.
    pub threads: Option<usize>,
}

/// Analysis pass coarsening the device into a [`RegionMap`] artifact
/// (regions, quotient graph, noise scores) for the layout and routing
/// stages.
#[derive(Clone, Debug, Default)]
pub struct RegionAnalysisPass {
    config: HierConfig,
}

impl RegionAnalysisPass {
    /// An analysis pass with explicit configuration.
    pub fn new(config: HierConfig) -> Self {
        RegionAnalysisPass { config }
    }
}

impl AnalysisPass for RegionAnalysisPass {
    fn name(&self) -> &'static str {
        "regions"
    }

    fn run(&self, ctx: &PassContext<'_>, artifacts: &mut Artifacts) {
        let budget = self
            .config
            .budget
            .unwrap_or_else(|| auto_budget(ctx.device.n_qubits()));
        artifacts.insert(coarsen(ctx.device, budget, self.config.noise.as_ref()));
    }
}

/// Layout pass of the hierarchy: clusters the circuit's qubits on their
/// dependence-weighted interaction graph, places clusters onto regions by
/// mapping the cluster-interaction circuit over the quotient graph
/// (recursive [`MappingPipeline`]), and expands the result into a full
/// initial layout.
#[derive(Clone, Debug, Default)]
pub struct HierLayoutPass {
    config: HierConfig,
}

impl HierLayoutPass {
    /// A layout pass with explicit configuration.
    pub fn new(config: HierConfig) -> Self {
        HierLayoutPass { config }
    }
}

impl LayoutPass for HierLayoutPass {
    fn name(&self) -> &'static str {
        "hier-layout"
    }

    fn run(&self, ctx: &PassContext<'_>, artifacts: &Artifacts) -> Layout {
        let computed_rm;
        let rm = match artifacts.get::<RegionMap>() {
            Some(rm) => rm,
            None => {
                // Composed without a RegionAnalysisPass: compute locally
                // (same result, charged to this pass's timing).
                let budget = self
                    .config
                    .budget
                    .unwrap_or_else(|| auto_budget(ctx.device.n_qubits()));
                computed_rm = coarsen(ctx.device, budget, self.config.noise.as_ref());
                &computed_rm
            }
        };
        let computed_weights;
        let weights: &[u64] = match artifacts.get::<DependenceAnalysis>() {
            Some(analysis) => analysis.weights(),
            None => {
                computed_weights =
                    DependenceAnalysis::new(ctx.circuit, self.config.subroute.weight_mode);
                computed_weights.weights()
            }
        };
        let iw = InteractionWeights::new(ctx.circuit, weights);
        let capacities: Vec<usize> = rm
            .rank
            .iter()
            .map(|&r| rm.regions[r as usize].len())
            .collect();
        let clusters = cluster_qubits(&iw, &capacities);
        let cluster_of = cluster_index(&clusters, ctx.circuit.n_qubits());
        let placed = place_clusters(rm, &clusters, &iw, &cluster_of, &self.config);
        build_layout(
            rm,
            &clusters,
            &iw,
            &placed,
            ctx.circuit.n_qubits(),
            ctx.device.n_qubits(),
        )
    }
}

/// Routing pass of the hierarchy.
///
/// Drives the shared [`RoutingState`] fragment by fragment: the frontmost
/// blocked gate selects a region; the maximal program-order run of
/// pending gates living entirely inside that region becomes a *fragment*,
/// whose SWAP plan comes from the content-keyed memo (computing it on a
/// miss by running the flat pipeline on the region subgraph with the
/// region's private distance matrix); the plan replays onto the real
/// state with greedy ready-gate execution in between. Cross-region gates
/// are stitched with a boundary SWAP chain along a device shortest path.
#[derive(Clone, Debug, Default)]
pub struct HierRoutingPass {
    config: HierConfig,
}

impl HierRoutingPass {
    /// A routing pass with explicit configuration.
    pub fn new(config: HierConfig) -> Self {
        HierRoutingPass { config }
    }

    /// Builds the fragment's gate stream over region-local slots (with
    /// interned kind names) — the pre-canonical form that
    /// [`canonicalize`] turns into the memo key.
    fn local_fragment(
        &self,
        state: &RoutingState<'_>,
        rm: &RegionMap,
        fragment: &[u32],
    ) -> Vec<FragmentGate> {
        let gates = state.circuit().gates();
        let mut local_gates = Vec::with_capacity(fragment.len());
        for &g in fragment {
            let gate = &gates[g as usize];
            let local: Vec<u32> = gate
                .qubits
                .iter()
                .map(|&q| rm.local_of[state.layout().phys(q) as usize])
                .collect();
            local_gates.push((
                intern(gate.kind.name()),
                local,
                gate.params.iter().map(|p| p.to_bits()).collect(),
            ));
        }
        local_gates
    }
}

/// Routes a canonical fragment — reconstructing its circuit and region
/// device from the key alone — with the flat pipeline and extracts its
/// SWAP plan in canonical slots. A free function (not a method) so the
/// prefetch workers — which outlive any `&self` borrow — run the
/// identical computation: the plan is a pure, deterministic function of
/// `(key, config)` and nothing else, which is what lets every tier of
/// the store (memory, prefetch, disk) share plans across threads,
/// processes and fragment labelings without breaking bit-for-bit
/// reproducibility.
fn canonical_plan(config: &QlosureConfig, key: &FragmentKey) -> Vec<(u32, u32)> {
    let device = topology::CouplingGraph::new("hier-canon", key.n_local as usize, &key.edges);
    // Content-keyed process-wide cache: isomorphic regions share one BFS.
    let dist = device.shared_distances();
    let mut local_circuit = Circuit::with_capacity(key.n_local as usize, key.gates.len());
    for (kind, operands, params) in &key.gates {
        local_circuit.push(Gate {
            kind: GateKind::from_name(kind),
            qubits: operands.clone(),
            params: params.iter().map(|&p| f64::from_bits(p)).collect(),
        });
    }
    let pipeline =
        MappingPipeline::new(IdentityLayoutPass, QlosureRoutingPass::new(config.clone()))
            .with_analysis(DependenceWeightsPass::new(config.weight_mode));
    match pipeline.run_with_distances(&local_circuit, &device, &dist) {
        Ok(outcome) => outcome
            .result
            .routed
            .gates()
            .iter()
            .filter(|g| g.kind == GateKind::Swap)
            .map(|g| (g.qubits[0], g.qubits[1]))
            .collect(),
        // Defensive: an unroutable fragment falls back to the
        // caller's forced-progress path.
        Err(_) => Vec::new(),
    }
}

/// How far past the scan cursor the speculative prefetch looks for
/// upcoming fragments (in gates). Bounds the per-step scan cost.
const PREFETCH_HORIZON: usize = 2048;
/// Maximum distinct regions speculated per step.
const PREFETCH_REGIONS: usize = 8;
/// Intake-queue bound of the prefetch pool; a full queue drops the
/// speculation (best-effort) rather than blocking the replay thread.
const PREFETCH_QUEUE: usize = 64;

impl RoutingPass for HierRoutingPass {
    fn name(&self) -> &'static str {
        "hier-route"
    }

    fn run(&self, state: &mut RoutingState<'_>, artifacts: &Artifacts) {
        let computed_rm;
        let rm = match artifacts.get::<RegionMap>() {
            Some(rm) => rm,
            None => {
                let budget = self
                    .config
                    .budget
                    .unwrap_or_else(|| auto_budget(state.device().n_qubits()));
                computed_rm = coarsen(state.device(), budget, self.config.noise.as_ref());
                &computed_rm
            }
        };
        let memo = memo::global();
        let subroute_fingerprint: Arc<str> = intern(&format!("{:?}", self.config.subroute));
        // One edge list per region for the whole run, shared by every
        // fragment canonicalization.
        let region_edges: Vec<Vec<(u32, u32)>> =
            rm.regions.iter().map(|r| r.device.edges()).collect();
        // Speculative fragment prefetch: a persistent worker pool warms
        // the shared memo with sub-route plans for fragments anchored in
        // regions *other* than the one being replayed. The replay loop
        // below is untouched — it always looks plans up by their true
        // content key, and a plan is a pure function of that key — so the
        // routed output is bit-for-bit identical at every thread count;
        // prefetch only moves memo misses off the critical path. One
        // thread skips speculation entirely (pure sequential replay).
        let pool = match self.config.threads {
            Some(n) => BatchEngine::with_threads(n),
            None => BatchEngine::from_env(),
        };
        let prefetch = (pool.threads() > 1).then(|| {
            let subroute = self.config.subroute.clone();
            let worker = move |(key, exact_hash): (FragmentKey, u64)| {
                memo::global().get_or_compute(key, exact_hash, |k| canonical_plan(&subroute, k));
            };
            pool.stream(PREFETCH_QUEUE, worker)
        });
        // u64 content hashes of already-submitted speculative keys: a
        // repeat fragment is never resubmitted (a hash collision merely
        // skips one speculation — correctness never depends on the set).
        let mut submitted: HashSet<u64> = HashSet::new();
        let n_gates = state.circuit().gates().len();
        // Epoch-stamped scratch: `front_stamp[g] == epoch` means g is in
        // the current front; `host_stamp[l] == epoch` means logical l is
        // hosted in the fragment's region.
        let mut front_stamp = vec![0u32; n_gates];
        let mut host_stamp = vec![0u32; state.circuit().n_qubits()];
        let mut epoch = 0u32;
        // Monotone scan cursor: the minimum unexecuted gate index only
        // ever grows.
        let mut cursor = 0usize;
        let mut fragment: Vec<u32> = Vec::new();
        loop {
            state.execute_ready();
            if state.is_done() {
                return;
            }
            epoch += 1;
            for &g in state.front() {
                front_stamp[g as usize] = epoch;
            }
            // After `execute_ready`, every front gate is a blocked
            // two-qubit gate; the frontmost one anchors this step.
            let g = *state.front().iter().min().expect("front non-empty");
            let (ra, rb) = {
                let (a, b) = state.circuit().gates()[g as usize]
                    .qubit_pair()
                    .expect("blocked gates are two-qubit");
                let (pa, pb) = (state.layout().phys(a), state.layout().phys(b));
                (rm.region_of(pa), rm.region_of(pb))
            };
            if ra != rb {
                // Boundary stitch: SWAP chain along a device shortest
                // path until the pair is adjacent; the top-of-loop
                // execute_ready then runs the gate.
                state.force_route(g);
                continue;
            }
            let region = &rm.regions[ra as usize];
            for &p in &region.qubits {
                if let Some(l) = state.layout().logical(p) {
                    host_stamp[l as usize] = epoch;
                }
            }
            // The minimum unexecuted gate index equals the minimum front
            // index, so the cursor lands exactly on g.
            while cursor < n_gates
                && state.in_degree(cursor as u32) == 0
                && front_stamp[cursor] != epoch
            {
                cursor += 1;
            }
            debug_assert_eq!(cursor as u32, g, "cursor must land on the anchor gate");
            // Fragment: maximal program-order run of pending gates whose
            // operands all live in the region; the first gate straddling
            // the boundary is a dependence barrier that ends the scan.
            fragment.clear();
            'scan: for i in cursor..n_gates {
                let executed = state.in_degree(i as u32) == 0 && front_stamp[i] != epoch;
                if executed {
                    continue;
                }
                let gate = &state.circuit().gates()[i];
                if gate.qubits.is_empty() {
                    continue;
                }
                let inside = gate
                    .qubits
                    .iter()
                    .filter(|&&q| host_stamp[q as usize] == epoch)
                    .count();
                if inside == gate.qubits.len() {
                    fragment.push(i as u32);
                } else if inside > 0 {
                    break 'scan;
                }
            }
            debug_assert!(fragment.contains(&g), "fragment must contain its anchor");
            // Per-fragment trace span: covers canonicalization, the plan
            // lookup (tier noted below) and the replay. Inert unless the
            // job installed a tracing context.
            let mut frag_span = trace::span("hier:fragment");
            frag_span.note("region", || ra.to_string());
            frag_span.note("gates", || fragment.len().to_string());
            let local_gates = self.local_fragment(state, rm, &fragment);
            let exact_hash = exact_fragment_hash(
                region.len() as u32,
                &region_edges[ra as usize],
                &local_gates,
                &subroute_fingerprint,
            );
            let canonical = canonicalize(
                region.len() as u32,
                &region_edges[ra as usize],
                &local_gates,
                subroute_fingerprint.clone(),
            );
            if let Some(stream) = &prefetch {
                // Before sub-routing this fragment, scan the pending tail
                // once and hand upcoming other-region fragments to the
                // workers, so their plans compute while this one does.
                // Speculation is best-effort: an intervening boundary
                // stitch can shift a fragment's entry layout, in which
                // case the submitted key never matches and the warm plan
                // is simply unused.
                let mut open: Vec<(u32, Vec<u32>)> = Vec::new();
                let mut done: Vec<(u32, Vec<u32>)> = Vec::new();
                let end = n_gates.min(cursor + PREFETCH_HORIZON);
                for i in cursor..end {
                    if state.in_degree(i as u32) == 0 && front_stamp[i] != epoch {
                        continue; // executed
                    }
                    let gate = &state.circuit().gates()[i];
                    if gate.qubits.is_empty() {
                        continue;
                    }
                    let r0 = rm.region_of(state.layout().phys(gate.qubits[0]));
                    let uniform = gate
                        .qubits
                        .iter()
                        .all(|&q| rm.region_of(state.layout().phys(q)) == r0);
                    if uniform {
                        if r0 == ra || done.iter().any(|(r, _)| *r == r0) {
                            continue;
                        }
                        let room = open.len() + done.len() < PREFETCH_REGIONS;
                        if let Some((_, frag)) = open.iter_mut().find(|(r, _)| *r == r0) {
                            frag.push(i as u32);
                        } else if room {
                            open.push((r0, vec![i as u32]));
                        }
                    } else {
                        // A straddling gate is a dependence barrier for
                        // every region it touches: those fragments end
                        // here, exactly like the replay scan's `break`.
                        for &q in &gate.qubits {
                            let r = rm.region_of(state.layout().phys(q));
                            if let Some(pos) = open.iter().position(|(or, _)| *or == r) {
                                done.push(open.remove(pos));
                            } else if !done.iter().any(|(dr, _)| *dr == r) {
                                done.push((r, Vec::new()));
                            }
                        }
                    }
                }
                if end == n_gates {
                    // The scan ran off the circuit: open runs are maximal.
                    done.append(&mut open);
                }
                // Speculation is invisible to the job's trace: suppress
                // the context so prefetch submissions do not carry it to
                // the pool workers (their spans would be noise and their
                // timing is not on the job's critical path).
                let _quiet = trace::suppress();
                for (r, frag) in done {
                    if frag.is_empty() {
                        continue;
                    }
                    let spec_region = &rm.regions[r as usize];
                    let spec_gates = self.local_fragment(state, rm, &frag);
                    let spec_hash = exact_fragment_hash(
                        spec_region.len() as u32,
                        &region_edges[r as usize],
                        &spec_gates,
                        &subroute_fingerprint,
                    );
                    let spec_canon = canonicalize(
                        spec_region.len() as u32,
                        &region_edges[r as usize],
                        &spec_gates,
                        subroute_fingerprint.clone(),
                    );
                    let mut hasher = std::collections::hash_map::DefaultHasher::new();
                    spec_canon.key.hash(&mut hasher);
                    if submitted.insert(hasher.finish()) {
                        // Full queue = drop the speculation, never block.
                        let _ = stream.submit((spec_canon.key, spec_hash));
                    }
                }
            }
            let (plan, tier) = memo.get_or_compute_tiered(canonical.key, exact_hash, |k| {
                canonical_plan(&self.config.subroute, k)
            });
            frag_span.note("plan_tier", || tier.as_str().to_string());
            frag_span.note("swaps", || plan.len().to_string());
            // Plan SWAPs are in canonical slots: pull each back through
            // the fragment's relabeling, then onto physical qubits.
            for &(c1, c2) in plan.iter() {
                let (l1, l2) = (
                    canonical.to_local[c1 as usize],
                    canonical.to_local[c2 as usize],
                );
                let (p1, p2) = (region.qubits[l1 as usize], region.qubits[l2 as usize]);
                state.apply_swap(p1, p2);
                state.execute_ready();
            }
            if plan.is_empty() {
                // Unroutable fragment (cannot happen for connected
                // regions, but termination must not depend on that):
                // force the anchor gate through directly.
                state.force_route(g);
            }
        }
    }
}

/// The hierarchical mapper: `weights → regions → hier-layout →
/// hier-route` as a [`MappingPipeline`], sharing the [`Mapper`] interface
/// with the flat mappers so engines, benches and the service drive it
/// uniformly.
#[derive(Clone, Debug, Default)]
pub struct HierMapper {
    /// Configuration; [`Default`] auto-sizes regions and uses the flat
    /// router's default tuning for placement and sub-routing.
    pub config: HierConfig,
}

impl HierMapper {
    /// A mapper with explicit configuration.
    pub fn with_config(config: HierConfig) -> Self {
        HierMapper { config }
    }

    /// A mapper with an explicit region-size budget.
    pub fn with_budget(budget: usize) -> Self {
        HierMapper {
            config: HierConfig {
                budget: Some(budget),
                ..HierConfig::default()
            },
        }
    }

    /// The pass composition this mapper runs.
    pub fn to_pipeline(&self) -> MappingPipeline {
        MappingPipeline::new(
            HierLayoutPass::new(self.config.clone()),
            HierRoutingPass::new(self.config.clone()),
        )
        .with_analysis(DependenceWeightsPass::new(self.config.subroute.weight_mode))
        .with_analysis(RegionAnalysisPass::new(self.config.clone()))
    }
}

impl Mapper for HierMapper {
    fn name(&self) -> &str {
        "hier"
    }

    fn map(&self, circuit: &Circuit, device: &topology::CouplingGraph) -> MappingResult {
        self.to_pipeline().map(circuit, device)
    }

    fn pipeline(&self) -> Option<MappingPipeline> {
        Some(self.to_pipeline())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuit::verify_routing;
    use topology::backends;

    fn verify(circuit: &Circuit, device: &topology::CouplingGraph, result: &MappingResult) {
        verify_routing(
            circuit,
            &result.routed,
            &|a, b| device.is_adjacent(a, b),
            &result.initial_layout,
        )
        .expect("hier routing must verify");
    }

    fn scrambled_circuit(n: usize, gates: usize, seed: u64) -> Circuit {
        let mut c = Circuit::new(n);
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        for _ in 0..gates {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = ((s >> 33) as usize % n) as u32;
            let b = ((s >> 13) as usize % n) as u32;
            if a != b {
                c.cx(a, b);
            } else {
                c.h(a);
            }
        }
        c
    }

    #[test]
    fn pipeline_composition_reads_right() {
        assert_eq!(
            HierMapper::default().to_pipeline().describe(),
            "weights → regions → hier-layout → hier-route"
        );
    }

    #[test]
    fn routes_and_verifies_on_a_grid() {
        let device = backends::square_grid(6, 6);
        let c = scrambled_circuit(36, 120, 7);
        let r = HierMapper::with_budget(9).map(&c, &device);
        verify(&c, &device, &r);
        assert_eq!(
            r.routed
                .gates()
                .iter()
                .filter(|g| g.kind == GateKind::Swap)
                .count(),
            r.swaps
        );
    }

    #[test]
    fn single_region_replay_is_bit_for_bit_flat_routing() {
        // Budget swallowing the device: one region, one whole-circuit
        // fragment whose replayed plan must reproduce the flat router
        // exactly (same identity layout, same sub-router config). The
        // fragment is constructed *already in canonical form* — its
        // first-use slot order is the identity and every slot is used —
        // so the canonical circuit the sub-router actually routes is the
        // original circuit and the comparison stays bit-for-bit.
        // Device: a path visiting 0-2-4-5-3-1, so every fragment gate
        // below is non-adjacent (nothing executes before the fragment
        // forms, keeping the whole stream in the fragment).
        let device = topology::CouplingGraph::new(
            "scrambled-line6",
            6,
            &[(0, 2), (2, 4), (4, 5), (3, 5), (1, 3)],
        );
        let mut c = Circuit::new(6);
        c.cx(0, 1); // first-use 0, 1
        c.cx(2, 3); // first-use 2, 3
        c.cx(0, 4); // first-use 4
        c.cx(2, 5); // first-use 5
        c.cx(1, 4);
        c.cx(3, 5);
        let flat = qlosure::QlosureMapper::default().map(&c, &device);
        let hier = MappingPipeline::new(
            IdentityLayoutPass,
            HierRoutingPass::new(HierConfig {
                budget: Some(64),
                ..HierConfig::default()
            }),
        )
        .map(&c, &device);
        assert_eq!(flat, hier);
        assert!(flat.swaps > 0, "the comparison must exercise real SWAPs");
    }

    #[test]
    fn relabeled_fragments_share_one_canonical_plan() {
        // The same structural fragment under two qubit labelings related
        // by a *device automorphism* (rotation of a 12-cycle) must share
        // one canonical plan: the second labeling is a canonical hit,
        // not a fresh sub-routing. The pass uses the process-wide memo
        // and tests run concurrently, so assert a monotone delta of the
        // canonical-hit counter across the second map call only.
        let edges: Vec<(u32, u32)> = (0..12u32).map(|i| (i, (i + 1) % 12)).collect();
        let device = topology::CouplingGraph::new("canon-cycle12", 12, &edges);
        let mut a = Circuit::new(12);
        let mut b = Circuit::new(12);
        for i in 0..6u32 {
            // Antipodal pairs (all blocked); b rotates every label by 3.
            a.cx(i, i + 6);
            b.cx((i + 3) % 12, (i + 9) % 12);
        }
        let config = HierConfig {
            budget: Some(64), // one region: the whole cycle
            threads: Some(1),
            ..HierConfig::default()
        };
        let route = |c: &Circuit| {
            MappingPipeline::new(IdentityLayoutPass, HierRoutingPass::new(config.clone()))
                .map(c, &device)
        };
        let ra = route(&a);
        verify(&a, &device, &ra);
        let between = memo::plan_store_stats();
        let rb = route(&b);
        verify(&b, &device, &rb);
        let after = memo::plan_store_stats();
        assert!(
            after.canonical_hits > between.canonical_hits,
            "the rotated circuit must hit canonically: {between:?} -> {after:?}"
        );
        // Same structure, same plan: SWAP counts agree exactly.
        assert_eq!(ra.swaps, rb.swaps);
    }

    #[test]
    fn cross_region_gates_are_stitched() {
        // Two line halves under an *identity* layout (bypassing the hier
        // layout pass): the boundary gate must be stitched with a SWAP
        // chain and still verify.
        let device = backends::line(8);
        let mut c = Circuit::new(8);
        c.cx(0, 7);
        let config = HierConfig {
            budget: Some(4),
            ..HierConfig::default()
        };
        let outcome = MappingPipeline::new(IdentityLayoutPass, HierRoutingPass::new(config))
            .run(&c, &device)
            .unwrap();
        verify(&c, &device, &outcome.result);
        assert!(outcome.result.swaps >= 1, "stitch must insert SWAPs");
        // The hier layout pass, by contrast, co-locates the pair.
        let placed = HierMapper::with_budget(4).map(&c, &device);
        verify(&c, &device, &placed);
        assert!(placed.swaps <= outcome.result.swaps);
    }

    #[test]
    fn deterministic_and_memo_warm_equals_cold() {
        let device = backends::square_grid(5, 5);
        let c = scrambled_circuit(25, 80, 99);
        let mapper = HierMapper::with_budget(9);
        let (h0, _) = memo::subroute_memo_stats();
        let cold = mapper.map(&c, &device);
        let warm = mapper.map(&c, &device);
        assert_eq!(cold, warm, "warm (memoized) run must be bit-for-bit cold");
        let (h1, _) = memo::subroute_memo_stats();
        assert!(h1 > h0, "the warm run must hit the fragment memo");
        verify(&c, &device, &cold);
    }

    #[test]
    fn prefetch_thread_count_never_changes_the_routing() {
        // The parallel-fragment determinism rule: speculative prefetch
        // only warms the content-keyed memo, so the routed circuit is
        // bit-for-bit identical at every thread count.
        let device = backends::square_grid(8, 8);
        let c = scrambled_circuit(64, 300, 17);
        let map_with = |threads: usize| {
            HierMapper::with_config(HierConfig {
                budget: Some(16),
                threads: Some(threads),
                ..HierConfig::default()
            })
            .map(&c, &device)
        };
        let sequential = map_with(1);
        verify(&c, &device, &sequential);
        for threads in [2, 4] {
            assert_eq!(
                sequential,
                map_with(threads),
                "threads={threads} must reproduce the sequential routing"
            );
        }
    }

    #[test]
    fn noise_ranking_changes_no_correctness() {
        let device = backends::square_grid(4, 4);
        let noise = NoiseModel::synthetic(&device, 7e-3, 3);
        let c = scrambled_circuit(16, 60, 11);
        let mapper = HierMapper::with_config(HierConfig {
            budget: Some(4),
            noise: Some(noise),
            ..HierConfig::default()
        });
        let r = mapper.map(&c, &device);
        verify(&c, &device, &r);
    }

    #[test]
    fn passes_compose_without_region_analysis() {
        // Layout and routing fall back to local coarsening when the
        // analysis pass is missing — same result.
        let device = backends::square_grid(4, 4);
        let c = scrambled_circuit(16, 40, 5);
        let full = HierMapper::with_budget(4).map(&c, &device);
        let config = HierConfig {
            budget: Some(4),
            ..HierConfig::default()
        };
        let bare = MappingPipeline::new(
            HierLayoutPass::new(config.clone()),
            HierRoutingPass::new(config),
        )
        .map(&c, &device);
        assert_eq!(full, bare);
    }

    #[test]
    fn barriers_and_measures_survive_hier() {
        let device = backends::square_grid(3, 3);
        let mut c = Circuit::new(9);
        c.h(0);
        c.barrier(&[0, 1, 2]);
        c.cx(0, 8);
        c.measure_all();
        let r = HierMapper::with_budget(3).map(&c, &device);
        verify(&c, &device, &r);
        assert_eq!(
            r.routed
                .gates()
                .iter()
                .filter(|g| g.kind == GateKind::Measure)
                .count(),
            9
        );
    }

    #[test]
    fn auto_threshold_is_a_device_size_rule() {
        assert!(!auto_prefers_hier(127));
        assert!(auto_prefers_hier(AUTO_THRESHOLD));
        assert!(auto_prefers_hier(4096));
    }

    #[test]
    fn maps_smaller_circuit_onto_larger_device() {
        let device = backends::square_grid(6, 6);
        let c = scrambled_circuit(10, 30, 23);
        let r = HierMapper::default().map(&c, &device);
        verify(&c, &device, &r);
    }
}
