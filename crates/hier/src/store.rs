//! The optional disk tier of the plan store: a versioned,
//! append-friendly file of `canonical key → SWAP plan` records under a
//! caller-chosen directory (`qlosured --plan-store <dir>`).
//!
//! Format: `<dir>/plans.qps` is a flat sequence of self-delimiting
//! records — no file header, so an empty file is a valid empty store
//! and appends never rewrite existing bytes. Each record is
//!
//! ```text
//! magic: u32 LE ("QPSR") | version: u32 LE | key_len: u32 LE |
//! plan_len: u32 LE | checksum: u64 LE (FNV-1a over key ++ plan bytes) |
//! key bytes | plan bytes
//! ```
//!
//! Per the workspace cache rule the store keys on full canonical
//! content (the key *bytes* are compared, never just a hash), is
//! bounded in entries and bytes with FIFO eviction (a rewrite-compact
//! when the bound trips), and degrades — never panics — on hostile
//! input: truncated tails, bit-flipped bodies, and alien-version
//! records are skipped with typed [`StoreWarning`]s. Plans in the store
//! are pure functions of their canonical key (the in-memory tier only
//! ever writes canonically-computed plans), so replaying a loaded plan
//! is deterministic across processes, restarts, and machines sharing a
//! store directory.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Store format version stamped into every record. Readers skip
/// records from other versions (forward and backward) instead of
/// guessing at their layout.
pub const STORE_VERSION: u32 = 1;

/// Record magic: `QPSR` in little-endian byte order.
const RECORD_MAGIC: u32 = u32::from_le_bytes(*b"QPSR");

/// Fixed bytes ahead of every record body.
const RECORD_HEADER: usize = 4 + 4 + 4 + 4 + 8;

/// Sanity ceiling on a single serialized key or plan: anything larger
/// is framing corruption, not data.
const MAX_FIELD: u32 = 1 << 20;

/// The store file inside the configured directory.
const FILE_NAME: &str = "plans.qps";

/// FNV-1a over a byte slice — the record checksum (and the exact-form
/// hash the memo tier shares).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Size bounds of the disk tier.
#[derive(Clone, Copy, Debug)]
pub struct PlanStoreConfig {
    /// Maximum retained records; the oldest are evicted first.
    pub max_entries: usize,
    /// Maximum store-file bytes; eviction keeps the file within this
    /// bound even across compactions.
    pub max_bytes: u64,
}

impl Default for PlanStoreConfig {
    fn default() -> Self {
        PlanStoreConfig {
            max_entries: 4096,
            max_bytes: 16 << 20,
        }
    }
}

/// A non-fatal defect found while reading or writing the store. The
/// store treats every one as "that record does not exist" — a warning
/// is the *only* consequence of hostile bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreWarning {
    /// The file ends mid-record (e.g. a crashed writer); the complete
    /// prefix was loaded.
    TruncatedTail {
        /// Byte offset of the incomplete record.
        offset: u64,
    },
    /// A record failed its framing or checksum validation. When the
    /// frame lengths were plausible the scan resumes at the next
    /// record; a broken frame ends the scan (resynchronization would
    /// be guesswork).
    CorruptRecord {
        /// Byte offset of the rejected record.
        offset: u64,
    },
    /// A record from a different store version; skipped, not decoded.
    AlienVersion {
        /// Byte offset of the skipped record.
        offset: u64,
        /// The version it claimed.
        version: u32,
    },
    /// A record too large to ever fit the byte bound; not written.
    OversizedRecord {
        /// The record's would-be size.
        bytes: u64,
    },
    /// An I/O failure; the store keeps serving from memory.
    Io {
        /// The failed operation.
        op: &'static str,
        /// The error text.
        message: String,
    },
}

impl fmt::Display for StoreWarning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreWarning::TruncatedTail { offset } => {
                write!(f, "truncated record at byte {offset}; loaded the prefix")
            }
            StoreWarning::CorruptRecord { offset } => {
                write!(f, "corrupt record at byte {offset}; skipped")
            }
            StoreWarning::AlienVersion { offset, version } => {
                write!(
                    f,
                    "record at byte {offset} has alien version {version}; skipped"
                )
            }
            StoreWarning::OversizedRecord { bytes } => {
                write!(
                    f,
                    "{bytes}-byte record exceeds the store byte bound; not written"
                )
            }
            StoreWarning::Io { op, message } => write!(f, "{op} failed: {message}"),
        }
    }
}

/// In-memory mirror of the live records, built by the lazy scan.
struct Loaded {
    /// key bytes → plan, newest duplicate wins.
    plans: HashMap<Vec<u8>, Vec<(u32, u32)>>,
    /// Insertion order for FIFO eviction.
    order: VecDeque<Vec<u8>>,
    /// Total bytes the live records occupy on disk after a compaction.
    live_bytes: u64,
    /// Current store-file size, including superseded records.
    file_bytes: u64,
}

/// The disk tier: a bounded record file plus its in-memory mirror.
/// All methods are infallible by contract — defects become
/// [`StoreWarning`]s (also echoed to stderr once each, so a daemon
/// operator sees them without polling).
pub struct PlanStore {
    path: PathBuf,
    config: PlanStoreConfig,
    state: Option<Loaded>,
    warnings: Vec<StoreWarning>,
}

impl PlanStore {
    /// Opens (creating the directory if needed) the store under `dir`.
    /// The store file itself is scanned lazily on first access.
    ///
    /// # Errors
    ///
    /// Only directory creation can fail; a missing or damaged store
    /// *file* is a warning at scan time, never an open error.
    pub fn open(dir: impl AsRef<Path>) -> std::io::Result<PlanStore> {
        PlanStore::open_with(dir, PlanStoreConfig::default())
    }

    /// [`PlanStore::open`] with explicit bounds.
    ///
    /// # Errors
    ///
    /// Only directory creation can fail.
    pub fn open_with(dir: impl AsRef<Path>, config: PlanStoreConfig) -> std::io::Result<PlanStore> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        Ok(PlanStore {
            path: dir.join(FILE_NAME),
            config,
            state: None,
            warnings: Vec::new(),
        })
    }

    /// The plan stored for `key_bytes` (a serialized canonical key),
    /// or `None`. The first call scans the store file.
    pub fn load(&mut self, key_bytes: &[u8]) -> Option<Vec<(u32, u32)>> {
        self.loaded().plans.get(key_bytes).cloned()
    }

    /// Appends `plan` under `key_bytes`, evicting FIFO and compacting
    /// as needed to stay within the configured bounds. Returns whether
    /// the record is now part of the store (an oversized record or a
    /// failed write is a warning, not an error).
    pub fn append(&mut self, key_bytes: &[u8], plan: &[(u32, u32)]) -> bool {
        let record = encode_record(key_bytes, plan);
        if record.len() as u64 > self.config.max_bytes {
            self.warn(StoreWarning::OversizedRecord {
                bytes: record.len() as u64,
            });
            return false;
        }
        let max_entries = self.config.max_entries.max(1);
        let max_bytes = self.config.max_bytes;
        let state = self.loaded();
        if state.plans.contains_key(key_bytes) {
            return true; // plans are pure functions of their key
        }
        state.plans.insert(key_bytes.to_vec(), plan.to_vec());
        state.order.push_back(key_bytes.to_vec());
        state.live_bytes += record.len() as u64;
        let mut evicted = false;
        while state.order.len() > max_entries || state.live_bytes > max_bytes {
            let Some(oldest) = state.order.pop_front() else {
                break;
            };
            if let Some(old_plan) = state.plans.remove(&oldest) {
                state.live_bytes -= encode_record(&oldest, &old_plan).len() as u64;
            }
            evicted = true;
        }
        if evicted || state.file_bytes + record.len() as u64 > max_bytes {
            // The append would push the *file* (live + superseded
            // records) past the bound: rewrite it from the live set,
            // which eviction just sized to fit.
            self.compact()
        } else {
            let state = self.state.as_mut().expect("state loaded above");
            state.file_bytes += record.len() as u64;
            match std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&self.path)
                .and_then(|mut file| file.write_all(&record).and_then(|()| file.flush()))
            {
                Ok(()) => true,
                Err(e) => {
                    self.warn(StoreWarning::Io {
                        op: "append",
                        message: e.to_string(),
                    });
                    false
                }
            }
        }
    }

    /// Number of live records.
    pub fn entries(&mut self) -> usize {
        self.loaded().plans.len()
    }

    /// Current store-file size in bytes.
    pub fn file_bytes(&mut self) -> u64 {
        self.loaded().file_bytes
    }

    /// Drains the warnings accumulated so far (each was also printed
    /// to stderr when it occurred).
    pub fn take_warnings(&mut self) -> Vec<StoreWarning> {
        std::mem::take(&mut self.warnings)
    }

    fn warn(&mut self, warning: StoreWarning) {
        eprintln!("plan store: {warning}");
        obs::event(
            obs::Level::Warn,
            "plan-store",
            &warning.to_string(),
            &[("path", &self.path.display().to_string())],
        );
        self.warnings.push(warning);
    }

    /// The in-memory mirror, scanning the file on first use.
    fn loaded(&mut self) -> &mut Loaded {
        if self.state.is_none() {
            let (loaded, warnings) = scan(&self.path, &self.config);
            for warning in warnings {
                self.warn(warning);
            }
            self.state = Some(loaded);
        }
        self.state.as_mut().expect("state just initialized")
    }

    /// Rewrites the store file from the live set (temp file + rename,
    /// so a crash mid-compaction leaves either the old or new file).
    fn compact(&mut self) -> bool {
        let state = self.state.as_mut().expect("compact runs on loaded state");
        let mut bytes = Vec::with_capacity(state.live_bytes as usize);
        for key in &state.order {
            if let Some(plan) = state.plans.get(key) {
                bytes.extend_from_slice(&encode_record(key, plan));
            }
        }
        state.live_bytes = bytes.len() as u64;
        state.file_bytes = bytes.len() as u64;
        let tmp = self.path.with_extension("qps.tmp");
        let result = std::fs::write(&tmp, &bytes).and_then(|()| std::fs::rename(&tmp, &self.path));
        match result {
            Ok(()) => true,
            Err(e) => {
                self.warn(StoreWarning::Io {
                    op: "compact",
                    message: e.to_string(),
                });
                false
            }
        }
    }
}

/// Serializes one record.
fn encode_record(key_bytes: &[u8], plan: &[(u32, u32)]) -> Vec<u8> {
    let mut plan_bytes = Vec::with_capacity(plan.len() * 8);
    for &(a, b) in plan {
        plan_bytes.extend_from_slice(&a.to_le_bytes());
        plan_bytes.extend_from_slice(&b.to_le_bytes());
    }
    let mut body = Vec::with_capacity(key_bytes.len() + plan_bytes.len());
    body.extend_from_slice(key_bytes);
    body.extend_from_slice(&plan_bytes);
    let mut out = Vec::with_capacity(RECORD_HEADER + body.len());
    out.extend_from_slice(&RECORD_MAGIC.to_le_bytes());
    out.extend_from_slice(&STORE_VERSION.to_le_bytes());
    out.extend_from_slice(&(key_bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(&(plan_bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(&fnv1a(&body).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

fn read_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes"))
}

/// Scans the store file into its in-memory mirror, collecting typed
/// warnings for every defect. Arbitrary bytes never panic.
fn scan(path: &Path, config: &PlanStoreConfig) -> (Loaded, Vec<StoreWarning>) {
    let mut loaded = Loaded {
        plans: HashMap::new(),
        order: VecDeque::new(),
        live_bytes: 0,
        file_bytes: 0,
    };
    let mut warnings = Vec::new();
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return (loaded, warnings),
        Err(e) => {
            warnings.push(StoreWarning::Io {
                op: "read",
                message: e.to_string(),
            });
            return (loaded, warnings);
        }
    };
    loaded.file_bytes = bytes.len() as u64;
    let mut offset = 0usize;
    while offset < bytes.len() {
        if bytes.len() - offset < RECORD_HEADER {
            warnings.push(StoreWarning::TruncatedTail {
                offset: offset as u64,
            });
            break;
        }
        if read_u32(&bytes, offset) != RECORD_MAGIC {
            // Lost framing: resynchronization would be guesswork.
            warnings.push(StoreWarning::CorruptRecord {
                offset: offset as u64,
            });
            break;
        }
        let version = read_u32(&bytes, offset + 4);
        let key_len = read_u32(&bytes, offset + 8);
        let plan_len = read_u32(&bytes, offset + 12);
        if key_len > MAX_FIELD || plan_len > MAX_FIELD {
            warnings.push(StoreWarning::CorruptRecord {
                offset: offset as u64,
            });
            break;
        }
        let body_len = (key_len + plan_len) as usize;
        let body_start = offset + RECORD_HEADER;
        if bytes.len() - body_start < body_len {
            warnings.push(StoreWarning::TruncatedTail {
                offset: offset as u64,
            });
            break;
        }
        let next = body_start + body_len;
        if version != STORE_VERSION {
            warnings.push(StoreWarning::AlienVersion {
                offset: offset as u64,
                version,
            });
            offset = next;
            continue;
        }
        let checksum =
            u64::from_le_bytes(bytes[offset + 16..offset + 24].try_into().expect("8 bytes"));
        let body = &bytes[body_start..next];
        if fnv1a(body) != checksum || plan_len % 8 != 0 {
            // A bit flip anywhere in the body (or an impossible plan
            // length): the frame itself is intact, so skip just this
            // record and keep scanning.
            warnings.push(StoreWarning::CorruptRecord {
                offset: offset as u64,
            });
            offset = next;
            continue;
        }
        let key = body[..key_len as usize].to_vec();
        let plan: Vec<(u32, u32)> = body[key_len as usize..]
            .chunks_exact(8)
            .map(|pair| {
                (
                    u32::from_le_bytes(pair[..4].try_into().expect("4 bytes")),
                    u32::from_le_bytes(pair[4..].try_into().expect("4 bytes")),
                )
            })
            .collect();
        let record_bytes = (RECORD_HEADER + body_len) as u64;
        if let Some(old) = loaded.plans.insert(key.clone(), plan) {
            // Newest duplicate wins; drop the stale order entry.
            loaded.live_bytes -= encode_record(&key, &old).len() as u64;
            loaded.order.retain(|k| *k != key);
        }
        loaded.order.push_back(key);
        loaded.live_bytes += record_bytes;
        offset = next;
        // Enforce the bounds on load too: an over-bound file (written
        // by a looser config, or adversarially) is trimmed FIFO.
        while loaded.order.len() > config.max_entries.max(1) || loaded.live_bytes > config.max_bytes
        {
            let Some(oldest) = loaded.order.pop_front() else {
                break;
            };
            if let Some(plan) = loaded.plans.remove(&oldest) {
                loaded.live_bytes -= encode_record(&oldest, &plan).len() as u64;
            }
        }
    }
    (loaded, warnings)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("qlosure-plan-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn key(tag: u8) -> Vec<u8> {
        vec![tag; 16]
    }

    #[test]
    fn round_trips_across_store_instances() {
        let dir = temp_store_dir("roundtrip");
        let mut store = PlanStore::open(&dir).unwrap();
        assert!(store.append(&key(1), &[(0, 1), (1, 2)]));
        assert!(store.append(&key(2), &[(3, 4)]));
        drop(store);
        let mut reopened = PlanStore::open(&dir).unwrap();
        assert_eq!(reopened.load(&key(1)), Some(vec![(0, 1), (1, 2)]));
        assert_eq!(reopened.load(&key(2)), Some(vec![(3, 4)]));
        assert_eq!(reopened.load(&key(9)), None);
        assert!(reopened.take_warnings().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_tail_loads_the_prefix_with_a_warning() {
        let dir = temp_store_dir("truncated");
        let mut store = PlanStore::open(&dir).unwrap();
        store.append(&key(1), &[(0, 1)]);
        store.append(&key(2), &[(2, 3)]);
        drop(store);
        let file = dir.join(FILE_NAME);
        let bytes = std::fs::read(&file).unwrap();
        std::fs::write(&file, &bytes[..bytes.len() - 5]).unwrap();
        let mut reopened = PlanStore::open(&dir).unwrap();
        assert_eq!(reopened.load(&key(1)), Some(vec![(0, 1)]));
        assert_eq!(reopened.load(&key(2)), None);
        assert!(matches!(
            reopened.take_warnings().as_slice(),
            [StoreWarning::TruncatedTail { .. }]
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flip_skips_only_the_damaged_record() {
        let dir = temp_store_dir("bitflip");
        let mut store = PlanStore::open(&dir).unwrap();
        store.append(&key(1), &[(0, 1)]);
        store.append(&key(2), &[(2, 3)]);
        drop(store);
        let file = dir.join(FILE_NAME);
        let mut bytes = std::fs::read(&file).unwrap();
        // Flip a byte inside record 1's body (offset header + 3): the
        // checksum rejects it, the frame survives, record 2 loads.
        bytes[RECORD_HEADER + 3] ^= 0x40;
        std::fs::write(&file, &bytes).unwrap();
        let mut reopened = PlanStore::open(&dir).unwrap();
        assert_eq!(reopened.load(&key(1)), None);
        assert_eq!(reopened.load(&key(2)), Some(vec![(2, 3)]));
        assert!(matches!(
            reopened.take_warnings().as_slice(),
            [StoreWarning::CorruptRecord { .. }]
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn garbage_files_never_panic_and_load_empty() {
        let dir = temp_store_dir("garbage");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(FILE_NAME), b"not a plan store at all....").unwrap();
        let mut store = PlanStore::open(&dir).unwrap();
        assert_eq!(store.load(&key(1)), None);
        assert_eq!(store.entries(), 0);
        assert!(matches!(
            store.take_warnings().as_slice(),
            [StoreWarning::CorruptRecord { .. }]
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn alien_version_records_are_skipped_not_decoded() {
        let dir = temp_store_dir("alien");
        let mut store = PlanStore::open(&dir).unwrap();
        store.append(&key(1), &[(0, 1)]);
        drop(store);
        let file = dir.join(FILE_NAME);
        // Append a hand-built record claiming version 99, then a valid
        // one: the alien body is never decoded, the valid one loads.
        let mut alien = encode_record(&key(7), &[(9, 9)]);
        alien[4..8].copy_from_slice(&99u32.to_le_bytes());
        let mut bytes = std::fs::read(&file).unwrap();
        bytes.extend_from_slice(&alien);
        bytes.extend_from_slice(&encode_record(&key(2), &[(5, 6)]));
        std::fs::write(&file, &bytes).unwrap();
        let mut reopened = PlanStore::open(&dir).unwrap();
        assert_eq!(reopened.load(&key(1)), Some(vec![(0, 1)]));
        assert_eq!(reopened.load(&key(7)), None);
        assert_eq!(reopened.load(&key(2)), Some(vec![(5, 6)]));
        assert!(matches!(
            reopened.take_warnings().as_slice(),
            [StoreWarning::AlienVersion { version: 99, .. }]
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn adversarial_writes_stay_within_the_byte_bound() {
        let dir = temp_store_dir("bounds");
        let config = PlanStoreConfig {
            max_entries: 1024,
            max_bytes: 2048,
        };
        let mut store = PlanStore::open_with(&dir, config).unwrap();
        for tag in 0..200u8 {
            store.append(&[tag; 24], &[(u32::from(tag), u32::from(tag) + 1)]);
            assert!(
                store.file_bytes() <= config.max_bytes,
                "file exceeded its byte bound at record {tag}"
            );
        }
        // Newest records survive, oldest were evicted FIFO.
        assert_eq!(store.load(&[199u8; 24]), Some(vec![(199, 200)]));
        assert_eq!(store.load(&[0u8; 24]), None);
        let on_disk = std::fs::metadata(dir.join(FILE_NAME)).unwrap().len();
        assert!(
            on_disk <= config.max_bytes,
            "on-disk size {on_disk} over bound"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn entry_bound_evicts_fifo() {
        let dir = temp_store_dir("entries");
        let config = PlanStoreConfig {
            max_entries: 3,
            max_bytes: 1 << 20,
        };
        let mut store = PlanStore::open_with(&dir, config).unwrap();
        for tag in 0..5u8 {
            store.append(&key(tag), &[(0, 1)]);
        }
        assert_eq!(store.entries(), 3);
        assert_eq!(store.load(&key(0)), None);
        assert_eq!(store.load(&key(1)), None);
        assert_eq!(store.load(&key(4)), Some(vec![(0, 1)]));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn oversized_records_are_refused_with_a_warning() {
        let dir = temp_store_dir("oversized");
        let config = PlanStoreConfig {
            max_entries: 16,
            max_bytes: 64,
        };
        let mut store = PlanStore::open_with(&dir, config).unwrap();
        let huge: Vec<(u32, u32)> = (0..64).map(|i| (i, i + 1)).collect();
        assert!(!store.append(&key(1), &huge));
        assert!(matches!(
            store.take_warnings().as_slice(),
            [StoreWarning::OversizedRecord { .. }]
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
