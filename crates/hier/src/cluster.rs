//! Circuit clustering: cutting the gate stream into interaction clusters
//! of logical qubits, guided by the `affine` transitive-dependence
//! weights.
//!
//! The interaction graph accumulates, per logical qubit pair, the ω-mass
//! of the two-qubit gates between them (`ω(g) + 1`, so even weight-zero
//! tail gates attract). Clusters then grow greedily — heaviest unassigned
//! qubit seeds a cluster, which repeatedly absorbs the unassigned qubit
//! most strongly connected to it — up to a per-cluster capacity taken
//! from the target regions. The result is the circuit half of the
//! hierarchy: clusters map onto regions, and gates that stay inside a
//! cluster route inside one region.

use circuit::Circuit;
use std::collections::HashMap;

/// One interaction cluster of logical qubits.
#[derive(Clone, Debug)]
pub struct Cluster {
    /// Member logical qubits in absorption order (seed first).
    pub qubits: Vec<u32>,
    /// Total ω-mass of the gates internal to the cluster plus its
    /// members' qubit mass — the placement ordering key.
    pub weight: u64,
}

/// The pairwise interaction weights of a circuit: `pair[(a, b)]` (with
/// `a < b`) is the accumulated `ω(g) + 1` over two-qubit gates on that
/// pair, and `qubit[q]` the per-qubit total.
#[derive(Clone, Debug, Default)]
pub struct InteractionWeights {
    /// Accumulated pair mass, keyed `(min, max)`.
    pub pair: HashMap<(u32, u32), u64>,
    /// Per-qubit totals.
    pub qubit: Vec<u64>,
    /// First gate index touching each pair (temporal placement order).
    pub first_gate: HashMap<(u32, u32), u32>,
}

impl InteractionWeights {
    /// Accumulates the interaction graph of `circuit` under the per-gate
    /// dependence `weights` (indexed by gate index; missing entries weigh
    /// zero, as with non-two-qubit gates).
    pub fn new(circuit: &Circuit, weights: &[u64]) -> Self {
        let mut out = InteractionWeights {
            pair: HashMap::new(),
            qubit: vec![0; circuit.n_qubits()],
            first_gate: HashMap::new(),
        };
        for (g, gate) in circuit.gates().iter().enumerate() {
            if let Some((a, b)) = gate.qubit_pair() {
                let w = weights.get(g).copied().unwrap_or(0) + 1;
                let key = (a.min(b), a.max(b));
                *out.pair.entry(key).or_insert(0) += w;
                out.first_gate.entry(key).or_insert(g as u32);
                out.qubit[a as usize] += w;
                out.qubit[b as usize] += w;
            }
        }
        out
    }
}

/// Cuts the circuit's interacting qubits into at most `capacities.len()`
/// clusters, cluster `i` capped at `capacities[i]` qubits (the last
/// capacity is unbounded so the cluster count can never exceed the region
/// count). Qubits that touch no two-qubit gate are left unclustered — the
/// layout stage parks them on leftover slots.
///
/// Deterministic: seeds are the heaviest unassigned qubits (ties toward
/// smaller index), growth absorbs the strongest-connected unassigned
/// qubit (same tie rule).
///
/// # Panics
///
/// Panics if `capacities` is empty.
pub fn cluster_qubits(iw: &InteractionWeights, capacities: &[usize]) -> Vec<Cluster> {
    assert!(!capacities.is_empty(), "need at least one cluster slot");
    let n = iw.qubit.len();
    // Adjacency lists of the interaction graph, for O(deg) growth.
    let mut adj: Vec<Vec<(u32, u64)>> = vec![Vec::new(); n];
    for (&(a, b), &w) in &iw.pair {
        adj[a as usize].push((b, w));
        adj[b as usize].push((a, w));
    }
    for list in &mut adj {
        list.sort_unstable();
    }
    let mut assigned = vec![false; n];
    let mut interacting: Vec<u32> = (0..n as u32)
        .filter(|&q| iw.qubit[q as usize] > 0)
        .collect();
    // Heaviest first, ties toward smaller index.
    interacting.sort_by_key(|&q| (std::cmp::Reverse(iw.qubit[q as usize]), q));

    let mut clusters: Vec<Cluster> = Vec::new();
    let mut cursor = 0usize;
    for (slot, &cap) in capacities.iter().enumerate() {
        // Seed: heaviest unassigned interacting qubit.
        while cursor < interacting.len() && assigned[interacting[cursor] as usize] {
            cursor += 1;
        }
        let Some(&seed) = interacting.get(cursor) else {
            break;
        };
        let last_slot = slot + 1 == capacities.len();
        let budget = if last_slot { usize::MAX } else { cap.max(1) };
        let mut members = vec![seed];
        assigned[seed as usize] = true;
        let mut weight = iw.qubit[seed as usize];
        // connection[q] = accumulated edge mass from q into the cluster.
        let mut connection: HashMap<u32, u64> = HashMap::new();
        fn absorb_links(
            adj: &[Vec<(u32, u64)>],
            assigned: &[bool],
            connection: &mut HashMap<u32, u64>,
            q: u32,
        ) {
            for &(peer, w) in &adj[q as usize] {
                if !assigned[peer as usize] {
                    *connection.entry(peer).or_insert(0) += w;
                }
            }
        }
        absorb_links(&adj, &assigned, &mut connection, seed);
        while members.len() < budget {
            // Strongest connection wins; ties toward smaller index.
            let Some((&next, _)) = connection
                .iter()
                .filter(|(q, _)| !assigned[**q as usize])
                .max_by_key(|(q, w)| (**w, std::cmp::Reverse(**q)))
            else {
                break;
            };
            connection.remove(&next);
            assigned[next as usize] = true;
            weight += iw.qubit[next as usize];
            members.push(next);
            absorb_links(&adj, &assigned, &mut connection, next);
        }
        if last_slot {
            for &q in interacting.iter().skip(cursor) {
                if !assigned[q as usize] {
                    assigned[q as usize] = true;
                    weight += iw.qubit[q as usize];
                    members.push(q);
                }
            }
        }
        clusters.push(Cluster {
            qubits: members,
            weight,
        });
    }
    clusters
}

/// `cluster_of[logical]` lookup table (`u32::MAX` for unclustered
/// qubits).
pub fn cluster_index(clusters: &[Cluster], n_qubits: usize) -> Vec<u32> {
    let mut out = vec![u32::MAX; n_qubits];
    for (c, cluster) in clusters.iter().enumerate() {
        for &q in &cluster.qubits {
            out[q as usize] = c as u32;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interaction_weights_accumulate_pairs() {
        let mut c = Circuit::new(4);
        c.cx(0, 1);
        c.cx(1, 0); // same pair, either orientation
        c.cx(2, 3);
        c.h(0);
        let iw = InteractionWeights::new(&c, &[5, 2, 0, 9]);
        assert_eq!(iw.pair[&(0, 1)], 6 + 3); // (5+1) + (2+1)
        assert_eq!(iw.pair[&(2, 3)], 1);
        assert_eq!(iw.qubit[0], 9);
        assert_eq!(iw.first_gate[&(0, 1)], 0);
        assert_eq!(iw.first_gate[&(2, 3)], 2);
    }

    #[test]
    fn clustering_groups_tightly_coupled_qubits() {
        // Two 3-qubit cliques bridged by one weak gate.
        let mut c = Circuit::new(6);
        for _ in 0..4 {
            c.cx(0, 1);
            c.cx(1, 2);
            c.cx(3, 4);
            c.cx(4, 5);
        }
        c.cx(2, 3); // weak bridge
        let weights = vec![0u64; c.gates().len()];
        let iw = InteractionWeights::new(&c, &weights);
        let clusters = cluster_qubits(&iw, &[3, 3]);
        assert_eq!(clusters.len(), 2);
        let mut groups: Vec<Vec<u32>> = clusters
            .iter()
            .map(|cl| {
                let mut v = cl.qubits.clone();
                v.sort_unstable();
                v
            })
            .collect();
        groups.sort();
        assert_eq!(groups, vec![vec![0, 1, 2], vec![3, 4, 5]]);
    }

    #[test]
    fn last_cluster_absorbs_the_remainder() {
        let mut c = Circuit::new(6);
        c.cx(0, 1);
        c.cx(2, 3);
        c.cx(4, 5); // three disconnected pairs, two slots
        let iw = InteractionWeights::new(&c, &[0, 0, 0]);
        let clusters = cluster_qubits(&iw, &[2, 2]);
        assert_eq!(clusters.len(), 2);
        let total: usize = clusters.iter().map(|cl| cl.qubits.len()).sum();
        assert_eq!(total, 6, "no interacting qubit may be dropped");
    }

    #[test]
    fn idle_qubits_stay_unclustered() {
        let mut c = Circuit::new(5);
        c.cx(0, 1);
        c.h(4); // 1q-only and idle qubits are not clustered
        let iw = InteractionWeights::new(&c, &[0]);
        let clusters = cluster_qubits(&iw, &[4]);
        let index = cluster_index(&clusters, 5);
        assert_eq!(index[0], 0);
        assert_eq!(index[1], 0);
        assert_eq!(index[4], u32::MAX);
        assert_eq!(index[2], u32::MAX);
    }
}
