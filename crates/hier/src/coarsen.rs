//! Device coarsening: partitioning a [`CouplingGraph`] into connected
//! regions and building the quotient [`RegionMap::quotient`] over them.
//!
//! Coarsening is the hardware half of the hierarchical mapper: a
//! 4096-qubit lattice becomes a few dozen regions, each small enough for
//! the flat router to solve quickly, plus a small region graph that the
//! placement stage maps clusters onto. Structured back-ends (`grid_RxC`
//! square lattices, `heavy_hex_*`/`ibm_sherbrooke` heavy-hexagons) get
//! explicit lattice-aware seeds; everything else falls back to greedy
//! BFS growth, which still guarantees connected regions.

use std::collections::VecDeque;
use std::sync::Arc;
use topology::{CouplingGraph, DistanceMatrix, NoiseModel};

/// One region of the partition: a connected set of physical qubits with
/// its induced subgraph (over local indices `0..len`) and that subgraph's
/// distance matrix, computed once at analysis time so per-fragment
/// sub-routing never touches the global distance cache.
#[derive(Clone, Debug)]
pub struct Region {
    /// Member qubits in BFS order from the region's seed; position in
    /// this list is the qubit's *local* index.
    pub qubits: Vec<u32>,
    /// The induced coupling subgraph over local indices.
    pub device: CouplingGraph,
    /// All-pairs distances of [`Region::device`].
    pub dist: Arc<DistanceMatrix>,
}

impl Region {
    /// Number of qubits in the region.
    pub fn len(&self) -> usize {
        self.qubits.len()
    }

    /// Whether the region is empty (never true for coarsener output).
    pub fn is_empty(&self) -> bool {
        self.qubits.is_empty()
    }
}

/// The full coarsening result: the partition, the per-region subgraphs
/// and the quotient region graph. Produced by [`coarsen`] (usually via
/// the `RegionAnalysisPass`) and consumed by the hierarchical layout and
/// routing passes.
#[derive(Clone, Debug)]
pub struct RegionMap {
    /// `region_of[phys]` = index of the region hosting physical qubit.
    pub region_of: Vec<u32>,
    /// `local_of[phys]` = the qubit's local index within its region.
    pub local_of: Vec<u32>,
    /// The regions, each connected and non-empty.
    pub regions: Vec<Region>,
    /// The quotient graph: one node per region, an edge wherever at least
    /// one device coupling crosses the region boundary. Its distance
    /// matrix flows through `CouplingGraph::shared_distances` when the
    /// placement pipeline runs on it.
    pub quotient: CouplingGraph,
    /// Noise-aware region scores (higher = healthier); uniform models and
    /// `None` degrade to internal edge density.
    pub scores: Vec<f64>,
    /// Region indices sorted by descending score (ties toward smaller
    /// index) — the placement ranking.
    pub rank: Vec<u32>,
}

impl RegionMap {
    /// Number of regions.
    pub fn n_regions(&self) -> usize {
        self.regions.len()
    }

    /// The region hosting physical qubit `p`.
    pub fn region_of(&self, p: u32) -> u32 {
        self.region_of[p as usize]
    }
}

/// Exact tile assignment for square-lattice back-ends, decoded from the
/// graph name (`grid_RxC`, with the qubit count cross-checked so a
/// mislabeled graph cannot produce an out-of-range assignment): the grid
/// is cut into √budget-sided square tiles, each a connected region of at
/// most `budget` qubits. Returns `(region_of, n_regions)`, or `None` for
/// non-grid devices.
pub fn structured_assignment(device: &CouplingGraph, budget: usize) -> Option<(Vec<u32>, usize)> {
    let rest = device.name().strip_prefix("grid_")?;
    let (r, c) = rest.split_once('x')?;
    let (rows, cols) = (r.parse::<usize>().ok()?, c.parse::<usize>().ok()?);
    if rows * cols != device.n_qubits() || rows == 0 || cols == 0 {
        return None;
    }
    let side = (budget as f64).sqrt().floor().max(1.0) as usize;
    let tiles_per_row = cols.div_ceil(side);
    let mut region_of = vec![0u32; rows * cols];
    let mut max_region = 0u32;
    for row in 0..rows {
        for col in 0..cols {
            let tile = ((row / side) * tiles_per_row + col / side) as u32;
            region_of[row * cols + col] = tile;
            max_region = max_region.max(tile);
        }
    }
    Some((region_of, max_region as usize + 1))
}

/// Lattice-aware BFS seeds for heavy-hexagon back-ends
/// (`heavy_hex_*`/`ibm_sherbrooke`): one seed every `budget` indices in
/// the row-major numbering, which follows the physical rows. Returns
/// `None` for other devices (square grids use
/// [`structured_assignment`] instead).
pub fn structured_seeds(device: &CouplingGraph, budget: usize) -> Option<Vec<u32>> {
    let name = device.name();
    if name.starts_with("heavy_hex_") || name == "ibm_sherbrooke" {
        let n = device.n_qubits();
        let step = budget.clamp(1, n);
        return Some((0..n).step_by(step).map(|q| q as u32).collect());
    }
    None
}

/// The automatic region-size budget: `√n` clamped to `[8, 128]`, so a
/// 4096-qubit grid coarsens into 64-qubit tiles while a 16-qubit device
/// still splits into a couple of regions.
pub fn auto_budget(n_qubits: usize) -> usize {
    (n_qubits as f64).sqrt().ceil().clamp(8.0, 128.0) as usize
}

/// Partitions `device` into connected regions of at most `budget` qubits
/// and derives the quotient graph and noise scores.
///
/// Square grids tile exactly ([`structured_assignment`]); heavy-hex
/// lattices grow all regions simultaneously from explicit row seeds
/// (balanced multi-source BFS, [`structured_seeds`]); unstructured
/// devices grow one region at a time from the lowest-index unassigned
/// qubit. Either way every qubit lands in exactly one region, every
/// region is connected, and no region exceeds the budget — pockets
/// stranded by seeded growth become their own (possibly small) regions
/// rather than orphans.
///
/// # Panics
///
/// Panics if `budget` is zero or the device is empty.
pub fn coarsen(device: &CouplingGraph, budget: usize, noise: Option<&NoiseModel>) -> RegionMap {
    assert!(budget >= 1, "region budget must be positive");
    let n = device.n_qubits();
    assert!(n >= 1, "cannot coarsen an empty device");
    const UNASSIGNED: u32 = u32::MAX;

    if let Some((region_of, n_regions)) = structured_assignment(device, budget) {
        // Square grids tile exactly: every region is a connected
        // √budget-sided block.
        return build_region_map(device, region_of, n_regions, noise);
    }

    let mut region_of = vec![UNASSIGNED; n];
    let mut sizes: Vec<usize> = Vec::new();

    if let Some(seeds) = structured_seeds(device, budget) {
        // Balanced multi-source BFS: one frontier per seed, grown
        // round-robin so tiles stay budget-sized and compact.
        let mut frontiers: Vec<VecDeque<u32>> = Vec::new();
        for &s in &seeds {
            if region_of[s as usize] != UNASSIGNED {
                continue; // duplicate seed (tiny lattices)
            }
            let id = frontiers.len() as u32;
            region_of[s as usize] = id;
            sizes.push(1);
            frontiers.push(VecDeque::from([s]));
        }
        let mut progressed = true;
        while progressed {
            progressed = false;
            for (id, frontier) in frontiers.iter_mut().enumerate() {
                if sizes[id] >= budget {
                    continue;
                }
                while let Some(p) = frontier.pop_front() {
                    let mut claimed = false;
                    for &q in device.neighbors(p) {
                        if region_of[q as usize] == UNASSIGNED {
                            region_of[q as usize] = id as u32;
                            sizes[id] += 1;
                            frontier.push_back(q);
                            progressed = true;
                            claimed = true;
                            if sizes[id] >= budget {
                                break;
                            }
                        }
                    }
                    if claimed {
                        // Revisit `p` next round in case it has more
                        // unassigned neighbours and budget remains.
                        frontier.push_front(p);
                        break;
                    }
                }
            }
        }
    }

    // Greedy sequential growth from the lowest-index unassigned qubit —
    // the whole partition for unstructured devices, and the sweep-up for
    // pockets that seeded growth stranded (every nearby region at budget)
    // or components no seed reached. Budget-strict and connected either
    // way.
    for seed in 0..n as u32 {
        if region_of[seed as usize] != UNASSIGNED {
            continue;
        }
        let id = sizes.len() as u32;
        region_of[seed as usize] = id;
        sizes.push(1);
        let mut queue = VecDeque::from([seed]);
        while let Some(p) = queue.pop_front() {
            if sizes[id as usize] >= budget {
                break;
            }
            for &q in device.neighbors(p) {
                if region_of[q as usize] == UNASSIGNED {
                    region_of[q as usize] = id;
                    sizes[id as usize] += 1;
                    queue.push_back(q);
                    if sizes[id as usize] >= budget {
                        break;
                    }
                }
            }
        }
    }

    build_region_map(device, region_of, sizes.len(), noise)
}

/// Materializes regions (BFS-ordered member lists, induced subgraphs,
/// local distance matrices), the quotient graph and the scores from a
/// completed qubit→region assignment.
fn build_region_map(
    device: &CouplingGraph,
    region_of: Vec<u32>,
    n_regions: usize,
    noise: Option<&NoiseModel>,
) -> RegionMap {
    let n = device.n_qubits();
    // Member lists in BFS order from each region's lowest-index qubit, so
    // local indices are stable and contiguous neighbourhoods get adjacent
    // slots.
    let mut members: Vec<Vec<u32>> = vec![Vec::new(); n_regions];
    let mut local_of = vec![u32::MAX; n];
    let mut seen = vec![false; n];
    for p in 0..n as u32 {
        let r = region_of[p as usize] as usize;
        if !members[r].is_empty() {
            continue; // region already materialized from its first qubit
        }
        // BFS within the region from its lowest-index qubit.
        let mut queue = VecDeque::from([p]);
        seen[p as usize] = true;
        while let Some(x) = queue.pop_front() {
            local_of[x as usize] = members[r].len() as u32;
            members[r].push(x);
            for &q in device.neighbors(x) {
                if !seen[q as usize] && region_of[q as usize] as usize == r {
                    seen[q as usize] = true;
                    queue.push_back(q);
                }
            }
        }
    }
    // Safety net for (theoretically) disconnected regions: append any
    // member the BFS missed.
    for p in 0..n as u32 {
        if local_of[p as usize] == u32::MAX {
            let r = region_of[p as usize] as usize;
            local_of[p as usize] = members[r].len() as u32;
            members[r].push(p);
        }
    }

    // Induced subgraphs, quotient edges and scores in one edge sweep.
    let mut local_edges: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n_regions];
    let mut quotient_edges: Vec<(u32, u32)> = Vec::new();
    let mut edge_reliability = vec![0.0f64; n_regions];
    for (a, b) in device.edges() {
        let (ra, rb) = (region_of[a as usize], region_of[b as usize]);
        if ra == rb {
            local_edges[ra as usize].push((local_of[a as usize], local_of[b as usize]));
            edge_reliability[ra as usize] += match noise {
                Some(m) => 1.0 - m.edge_error(a, b),
                None => 1.0,
            };
        } else {
            quotient_edges.push((ra.min(rb), ra.max(rb)));
        }
    }
    quotient_edges.sort_unstable();
    quotient_edges.dedup();

    let regions: Vec<Region> = members
        .into_iter()
        .zip(&local_edges)
        .enumerate()
        .map(|(r, (qubits, edges))| {
            let sub = CouplingGraph::new(
                format!("{}:r{r}", device.name()),
                qubits.len(),
                edges.as_slice(),
            );
            let dist = Arc::new(sub.distances());
            Region {
                qubits,
                device: sub,
                dist,
            }
        })
        .collect();

    // Score: mean intra-edge reliability (noise-aware) scaled by edge
    // density, so healthy well-connected regions rank first. Uniform or
    // absent noise degrades to pure density.
    let scores: Vec<f64> = regions
        .iter()
        .enumerate()
        .map(|(r, region)| {
            let edges = region.device.n_edges();
            if edges == 0 {
                return 0.0;
            }
            let mean_rel = edge_reliability[r] / edges as f64;
            mean_rel * (edges as f64 / region.len() as f64)
        })
        .collect();
    let mut rank: Vec<u32> = (0..n_regions as u32).collect();
    rank.sort_by(|&a, &b| {
        scores[b as usize]
            .partial_cmp(&scores[a as usize])
            .expect("scores are never NaN")
            .then(a.cmp(&b))
    });

    let quotient = CouplingGraph::new(
        format!("rg:{}:{n_regions}", device.name()),
        n_regions,
        &quotient_edges,
    );
    RegionMap {
        region_of,
        local_of,
        regions,
        quotient,
        scores,
        rank,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topology::backends;

    fn assert_partition_sane(device: &CouplingGraph, rm: &RegionMap, budget: usize) {
        // Total coverage: every qubit in exactly one region.
        let mut counted = 0usize;
        for (r, region) in rm.regions.iter().enumerate() {
            assert!(!region.is_empty(), "region {r} empty");
            assert!(region.device.is_connected(), "region {r} disconnected");
            for (local, &p) in region.qubits.iter().enumerate() {
                assert_eq!(rm.region_of[p as usize], r as u32);
                assert_eq!(rm.local_of[p as usize], local as u32);
            }
            counted += region.len();
        }
        assert_eq!(counted, device.n_qubits(), "partition must cover device");
        // Budget respected on connected devices with default seeding.
        if device.is_connected() {
            for region in &rm.regions {
                assert!(region.len() <= budget.max(1), "region over budget");
            }
        }
        // Local adjacency mirrors global adjacency.
        for region in &rm.regions {
            for (a, b) in region.device.edges() {
                let (ga, gb) = (region.qubits[a as usize], region.qubits[b as usize]);
                assert!(device.is_adjacent(ga, gb));
            }
        }
    }

    #[test]
    fn grid_coarsening_uses_structured_tiles() {
        let device = backends::square_grid(8, 8);
        let rm = coarsen(&device, 16, None);
        assert_partition_sane(&device, &rm, 16);
        // 8×8 with budget 16 (4×4 tiles) → exactly 4 regions of 16.
        assert_eq!(rm.n_regions(), 4);
        assert!(rm.regions.iter().all(|r| r.len() == 16));
        assert!(rm.quotient.is_connected());
    }

    #[test]
    fn heavy_hex_coarsening_covers_sherbrooke() {
        let device = backends::sherbrooke();
        let rm = coarsen(&device, auto_budget(127), None);
        assert_partition_sane(&device, &rm, 127);
        assert!(rm.n_regions() > 1);
        assert!(rm.quotient.is_connected());
    }

    #[test]
    fn unstructured_fallback_still_partitions() {
        let device = backends::aspen16();
        let rm = coarsen(&device, 6, None);
        assert_partition_sane(&device, &rm, 6);
        assert!(rm.n_regions() >= 3);
    }

    #[test]
    fn single_region_when_budget_swallows_device() {
        let device = backends::ring(8);
        let rm = coarsen(&device, 64, None);
        assert_eq!(rm.n_regions(), 1);
        assert_eq!(rm.regions[0].len(), 8);
        assert_eq!(rm.quotient.n_edges(), 0);
    }

    #[test]
    fn noise_scores_rank_healthy_regions_first() {
        // Two-region line; poison every edge inside the second half.
        let device = backends::line(8);
        let mut noise = NoiseModel::uniform(&device, 0.001, 0.0001);
        for a in 4..7u32 {
            noise.set_edge_error(a, a + 1, 0.3);
        }
        let rm = coarsen(&device, 4, Some(&noise));
        assert_eq!(rm.n_regions(), 2);
        let healthy = rm.region_of[0];
        assert_eq!(rm.rank[0], healthy, "clean region must rank first");
        assert!(rm.scores[rm.rank[0] as usize] >= rm.scores[rm.rank[1] as usize]);
    }

    #[test]
    fn disconnected_devices_get_per_component_regions() {
        let device = CouplingGraph::new("islands", 6, &[(0, 1), (1, 2), (3, 4), (4, 5)]);
        let rm = coarsen(&device, 10, None);
        assert_partition_sane(&device, &rm, 10);
        assert_eq!(rm.n_regions(), 2);
    }

    #[test]
    fn auto_budget_tracks_sqrt() {
        assert_eq!(auto_budget(16), 8); // clamped up
        assert_eq!(auto_budget(4096), 64);
        assert_eq!(auto_budget(1_000_000), 128); // clamped down
    }

    #[test]
    fn structured_decoders_reject_mislabeled_devices() {
        // Name says grid_9x9 but the graph has 4 qubits: decoder must bail.
        let fake = CouplingGraph::new("grid_9x9", 4, &[(0, 1), (1, 2), (2, 3)]);
        assert!(structured_assignment(&fake, 8).is_none());
        assert!(structured_assignment(&backends::aspen16(), 8).is_none());
        let (assign, k) = structured_assignment(&backends::square_grid(6, 6), 9).unwrap();
        assert_eq!(assign.len(), 36);
        assert_eq!(k, 4); // 3×3 tiles
        assert!(structured_seeds(&backends::sherbrooke(), 12).is_some());
        assert!(structured_seeds(&backends::square_grid(6, 6), 9).is_none());
        assert!(structured_seeds(&backends::aspen16(), 8).is_none());
    }
}
