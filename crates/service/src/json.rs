//! A minimal JSON value model with a hand-rolled parser and encoder.
//!
//! The wire protocol is newline-delimited JSON and the build environment
//! is offline, so this module is the crate's one JSON implementation —
//! the encoding side mirrors the deterministic style of
//! `bench_support::report` (fixed key order, escaped strings), and the
//! parsing side is written for *untrusted* input: every malformed,
//! truncated or adversarial frame returns a positioned [`JsonError`],
//! never a panic, with an explicit recursion-depth bound so deeply nested
//! garbage cannot overflow the stack.
//!
//! Numbers are carried as `f64`. Protocol integers (IDs, counters) stay
//! below 2⁵³ so the round trip is exact; 64-bit fingerprints travel as hex
//! strings instead. Floats encode through Rust's shortest-roundtrip
//! `Display`, so `parse(encode(x)) == x` for every finite value.

use std::fmt;

/// Maximum nesting depth accepted by the parser.
const MAX_DEPTH: usize = 64;

/// A parsed JSON value. Object members preserve insertion/wire order.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in wire order (duplicate keys are kept as sent).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// The object's member named `key`, when this is an object containing
    /// one (first occurrence wins).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object members, when this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// The string contents, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as an exactly-representable unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        let x = self.as_f64()?;
        (x.is_finite() && x >= 0.0 && x <= 2f64.powi(53) && x.fract() == 0.0).then_some(x as u64)
    }

    /// The value as an exactly-representable signed integer.
    pub fn as_i64(&self) -> Option<i64> {
        let x = self.as_f64()?;
        (x.is_finite() && x.abs() <= 2f64.powi(53) && x.fract() == 0.0).then_some(x as i64)
    }

    /// The boolean value, when this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, when this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Encodes the value as compact single-line JSON (objects keep member
    /// order, so encoding is deterministic).
    ///
    /// # Errors
    ///
    /// [`EncodeError`] when the value contains a non-finite number. JSON
    /// has no NaN/infinity literal and the parser rejects them, so a
    /// lossy stand-in would break the `parse(encode(x)) == x` fixed-point
    /// invariant; non-finite values are surfaced as a typed error instead.
    pub fn encode(&self) -> Result<String, EncodeError> {
        let mut out = String::new();
        self.write(&mut out)?;
        Ok(out)
    }

    fn write(&self, out: &mut String) -> Result<(), EncodeError> {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(x) => {
                if !x.is_finite() {
                    return Err(EncodeError { value: *x });
                }
                // Rust's Display for f64 is shortest-roundtrip and
                // never uses exponent notation: always valid JSON.
                out.push_str(&format!("{x}"));
            }
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out)?;
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, k);
                    out.push(':');
                    v.write(out)?;
                }
                out.push('}');
            }
        }
        Ok(())
    }
}

/// A value that cannot be represented on the wire: JSON has no literal
/// for NaN or the infinities, so encoding one is a protocol bug surfaced
/// as a typed error rather than a silently corrupted frame.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EncodeError {
    /// The offending non-finite number.
    pub value: f64,
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "non-finite number {} is not representable in JSON",
            self.value
        )
    }
}

impl std::error::Error for EncodeError {}

/// Escapes and quotes `s` into `out`.
fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A positioned parse failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset the failure was detected at.
    pub pos: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.pos)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON value, rejecting trailing non-whitespace.
///
/// # Errors
///
/// A [`JsonError`] naming the failure and its byte offset; arbitrary
/// input never panics.
pub fn parse(src: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        src,
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    src: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> JsonError {
        JsonError { pos: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, msg: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{', "expected '{'")?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':'")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        let mut run_start = self.pos;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    out.push_str(&self.src[run_start..self.pos]);
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    out.push_str(&self.src[run_start..self.pos]);
                    self.pos += 1;
                    out.push(self.escape()?);
                    run_start = self.pos;
                }
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Any other byte is part of a valid UTF-8 sequence
                    // (the input is a &str); runs are copied wholesale at
                    // the next escape/quote, which always falls on an
                    // ASCII boundary.
                    self.pos += 1;
                }
            }
        }
    }

    fn escape(&mut self) -> Result<char, JsonError> {
        let c = match self.peek() {
            None => return Err(self.err("unterminated escape")),
            Some(b'"') => '"',
            Some(b'\\') => '\\',
            Some(b'/') => '/',
            Some(b'b') => '\u{0008}',
            Some(b'f') => '\u{000C}',
            Some(b'n') => '\n',
            Some(b'r') => '\r',
            Some(b't') => '\t',
            Some(b'u') => {
                self.pos += 1;
                return self.unicode_escape();
            }
            Some(_) => return Err(self.err("invalid escape")),
        };
        self.pos += 1;
        Ok(c)
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(self.err("invalid \\u escape")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: a low surrogate must follow.
            if self.peek() != Some(b'\\') {
                return Err(self.err("unpaired surrogate"));
            }
            self.pos += 1;
            if self.peek() != Some(b'u') {
                return Err(self.err("unpaired surrogate"));
            }
            self.pos += 1;
            let lo = self.hex4()?;
            if !(0xDC00..0xE000).contains(&lo) {
                return Err(self.err("unpaired surrogate"));
            }
            let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
            return char::from_u32(code).ok_or_else(|| self.err("invalid surrogate pair"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("unpaired surrogate"))
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.err("invalid number"));
        }
        // RFC 8259: the integer part is `0` or a nonzero digit followed by
        // digits — `0123` and `-007` are not JSON numbers.
        if self.bytes[digits_start] == b'0' && self.pos - digits_start > 1 {
            return Err(JsonError {
                pos: digits_start,
                msg: "leading zero in number",
            });
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.err("invalid number"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.err("invalid number"));
            }
        }
        let text = &self.src[start..self.pos];
        let x: f64 = text.parse().map_err(|_| JsonError {
            pos: start,
            msg: "number out of range",
        })?;
        if !x.is_finite() {
            return Err(JsonError {
                pos: start,
                msg: "number out of range",
            });
        }
        Ok(Json::Num(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for (src, want) in [
            ("null", Json::Null),
            ("true", Json::Bool(true)),
            ("false", Json::Bool(false)),
            ("0", Json::Num(0.0)),
            ("-17", Json::Num(-17.0)),
            ("3.5", Json::Num(3.5)),
            ("1e3", Json::Num(1000.0)),
            ("2.5e-2", Json::Num(0.025)),
            ("\"hi\"", Json::Str("hi".into())),
        ] {
            assert_eq!(parse(src).unwrap(), want, "src = {src}");
        }
    }

    #[test]
    fn containers_preserve_order() {
        let v = parse(r#" { "b" : [1, "x", null], "a": {"nested": true} } "#).unwrap();
        let obj = v.as_obj().unwrap();
        assert_eq!(obj[0].0, "b");
        assert_eq!(obj[1].0, "a");
        assert_eq!(v.get("b").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().get("nested").unwrap().as_bool(),
            Some(true)
        );
        // encode → parse is the identity.
        assert_eq!(parse(&v.encode().unwrap()).unwrap(), v);
    }

    #[test]
    fn string_escapes_round_trip() {
        let tricky = "quote\" slash\\ nl\n tab\t cr\r nul\u{0} emoji🦀 high\u{10FFFF}";
        let encoded = Json::Str(tricky.into()).encode().unwrap();
        assert!(!encoded.contains('\n'), "one frame stays one line");
        assert_eq!(parse(&encoded).unwrap(), Json::Str(tricky.into()));
        // Explicit \u escapes, including a surrogate pair.
        assert_eq!(
            parse(r#""\u0041\ud83e\udd80\/""#).unwrap(),
            Json::Str("A🦀/".into())
        );
    }

    #[test]
    fn float_display_round_trips_exactly() {
        for x in [0.1, 1.0 / 3.0, 6.0221408e23, 5e-324, f64::MAX] {
            let encoded = Json::Num(x).encode().unwrap();
            assert_eq!(parse(&encoded).unwrap(), Json::Num(x), "x = {x:?}");
        }
    }

    #[test]
    fn non_finite_numbers_are_a_typed_encode_error() {
        for x in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = Json::Num(x).encode().unwrap_err();
            assert!(err.to_string().contains("not representable"), "x = {x:?}");
            // Nested occurrences are caught too.
            let nested = Json::Obj(vec![("k".into(), Json::Arr(vec![Json::Num(x)]))]);
            assert!(nested.encode().is_err(), "nested x = {x:?}");
        }
    }

    #[test]
    fn malformed_inputs_error_without_panicking() {
        for bad in [
            "",
            "   ",
            "{",
            "}",
            "[1,",
            "[1 2]",
            "{\"a\" 1}",
            "{\"a\":}",
            "{a:1}",
            "\"unterminated",
            "\"bad \\q escape\"",
            "\"\\u12\"",
            "\"\\ud800\"",
            "\"\\ud800\\u0041\"",
            "01x",
            "0123",
            "-007",
            "00",
            "-01.5",
            "-",
            "1.",
            "1e",
            "1e999",
            "nul",
            "truex",
            "12 34",
            "\u{1}",
            "\"ctrl\u{1}\"",
        ] {
            assert!(
                parse(bad).is_err(),
                "`{}` must be rejected",
                bad.escape_debug()
            );
        }
    }

    #[test]
    fn nesting_depth_is_bounded() {
        let deep = "[".repeat(10_000) + &"]".repeat(10_000);
        let err = parse(&deep).unwrap_err();
        assert_eq!(err.msg, "nesting too deep");
        // A legal depth still parses.
        let ok = "[".repeat(30) + "1" + &"]".repeat(30);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn integer_accessors_check_exactness() {
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("-42").unwrap().as_i64(), Some(-42));
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert_eq!(parse("1e300").unwrap().as_u64(), None);
        assert_eq!(parse("\"7\"").unwrap().as_u64(), None);
    }
}
