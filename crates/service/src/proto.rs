//! The versioned newline-delimited JSON wire protocol.
//!
//! Every frame is one line of JSON. Requests and responses both carry the
//! protocol version in a `"v"` field; the daemon rejects any mismatch
//! with a typed [`ErrorCode::VersionMismatch`] error, per the repo's
//! protocol-versioning rule (breaking wire changes bump
//! [`PROTOCOL_VERSION`]).
//!
//! Encoding and parsing are total and symmetric: `parse(encode(x)) == x`
//! for every [`Request`] and [`Response`] value (pinned by the property
//! suite), and arbitrary bytes fed to the parsers produce a typed
//! [`ProtoError`] — never a panic. Frames longer than [`MAX_FRAME`] are
//! rejected before parsing.

use crate::json::{self, Json};
use std::fmt;

/// Version of this wire protocol. Breaking changes to the frame shapes
/// bump this and the daemon rejects mismatched clients with a
/// `version-mismatch` error.
pub const PROTOCOL_VERSION: u64 = 1;

/// Hard bound on one frame's length in bytes (requests carry inline QASM,
/// so the bound is generous — but adversarial multi-gigabyte lines must
/// die before allocation).
pub const MAX_FRAME: usize = 8 * 1024 * 1024;

/// Scheduling class of a submission: interactive jobs overtake batch jobs
/// in the admission queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Priority {
    /// Latency-sensitive; drained before any queued batch work.
    Interactive,
    /// Throughput work; drained FIFO after interactive work.
    Batch,
}

impl Priority {
    /// The wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Batch => "batch",
        }
    }

    /// Parses the wire spelling.
    pub fn from_wire(s: &str) -> Option<Priority> {
        match s {
            "interactive" => Some(Priority::Interactive),
            "batch" => Some(Priority::Batch),
            _ => None,
        }
    }
}

/// How the daemon maps a submission onto the mapping architectures.
///
/// Additive request field (absent = `Flat`, so pre-existing clients keep
/// working without a protocol version bump): `"hier"` swaps the resolved
/// mapper for the hierarchical partitioned mapper, `"auto"` does so only
/// for devices at or above the hierarchy's size threshold.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Strategy {
    /// Run the named mapper flat against the whole device.
    #[default]
    Flat,
    /// Run the hierarchical partitioned mapper (`qlosure-hier`).
    Hier,
    /// Pick `Hier` for large devices, the named mapper otherwise.
    Auto,
}

impl Strategy {
    /// The wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Strategy::Flat => "flat",
            Strategy::Hier => "hier",
            Strategy::Auto => "auto",
        }
    }

    /// Parses the wire spelling.
    pub fn from_wire(s: &str) -> Option<Strategy> {
        match s {
            "flat" => Some(Strategy::Flat),
            "hier" => Some(Strategy::Hier),
            "auto" => Some(Strategy::Auto),
            _ => None,
        }
    }
}

/// A client→daemon frame.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Submit one mapping job.
    Submit {
        /// Device name, resolved via `topology::backends::by_name`.
        backend: String,
        /// Mapper name (`qlosure` or any baseline).
        mapper: String,
        /// Inline OpenQASM 2.0 source.
        qasm: String,
        /// Scheduling class.
        priority: Priority,
        /// Opt-in: also estimate the routed circuit's success probability
        /// under a synthetic calibration (reported as `success_ppm`).
        fidelity: bool,
        /// Mapping architecture selection (additive; absent on the wire
        /// means [`Strategy::Flat`]).
        strategy: Strategy,
        /// Opt-in: retain the job's span tree for a later `trace`
        /// request (additive; absent on the wire means `false`).
        trace: bool,
    },
    /// Ask for the state/result of a submitted job.
    Poll {
        /// The ID returned by the submit response.
        id: u64,
    },
    /// Ask for a completed job's span tree (additive op, like
    /// [`Request::Metrics`]): answered when the submit opted in with
    /// `trace: true` or the job exceeded the daemon's slow-job retention
    /// threshold, `unknown-id` otherwise.
    Trace {
        /// The ID returned by the submit response.
        id: u64,
    },
    /// Ask for daemon counters, including shared-cache hit/miss totals.
    Stats,
    /// Ask for the full observability export: counters plus queue-delay
    /// percentiles and per-pass timing aggregates ([`MetricsBody`]).
    /// Additive op (new daemons answer it, old daemons answer
    /// `bad-request`) — no version bump.
    Metrics,
    /// Ask for the metrics time-series window: the sampler thread's
    /// retained [`MetricsBody`] snapshots plus rates computed over them
    /// ([`HistoryBody`]). Additive op, like [`Request::Metrics`].
    MetricsHistory,
    /// Ask for the journal window: retained structured events at or
    /// above `min_level`, strictly after `after_seq` ([`EventsBody`]).
    /// Additive op, like [`Request::Metrics`].
    Events {
        /// Minimum severity to include (absent on the wire decodes as
        /// `debug`, i.e. everything).
        min_level: obs::Level,
        /// Only events with a strictly greater sequence number (absent
        /// on the wire decodes as 0 — the whole retained window).
        after_seq: u64,
    },
    /// Request graceful shutdown: intake closes, in-flight and queued
    /// jobs drain, then the daemon exits.
    Shutdown,
}

/// The result summary of one completed mapping job.
#[derive(Clone, Debug, PartialEq)]
pub struct Summary {
    /// SWAPs inserted.
    pub swaps: u64,
    /// Routed depth (unit-gate model).
    pub depth: u64,
    /// Routed gate count.
    pub qops: u64,
    /// Initial layout, `initial_layout[logical] = physical`.
    pub initial_layout: Vec<u32>,
    /// Final layout after all SWAPs.
    pub final_layout: Vec<u32>,
    /// FNV-1a fingerprint of the full mapping result (routed gates +
    /// layouts), as 16 lowercase hex digits — lets clients check
    /// bit-for-bit equivalence without shipping the routed circuit.
    pub fingerprint: String,
    /// The pass composition that ran (empty for opaque mappers).
    pub pipeline: String,
    /// Per-pass wall-clock timings (`stage:name`, seconds).
    pub pass_seconds: Vec<(String, f64)>,
    /// Wall-clock mapping seconds (timing field).
    pub seconds: f64,
    /// Seconds between admission and worker pickup (timing field).
    pub queue_seconds: f64,
    /// Completion sequence number (0-based, daemon-wide): the order jobs
    /// finished in, which is how priority scheduling is observable.
    pub seq: u64,
    /// Whether the independent routing verifier accepted the result
    /// (always `true` for a `done` response; failures use `failed`).
    pub verified: bool,
    /// Estimated success probability in parts per million, when the
    /// request opted into fidelity estimation.
    pub success_ppm: Option<i64>,
}

/// Daemon counters reported by [`Response::Stats`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StatsBody {
    /// The daemon's protocol version.
    pub protocol: u64,
    /// Mapping worker count.
    pub workers: u64,
    /// Jobs currently waiting in the admission queue.
    pub queue_depth: u64,
    /// Jobs accepted since startup.
    pub submitted: u64,
    /// Jobs completed successfully since startup.
    pub completed: u64,
    /// Jobs rejected at admission (queue full / shutting down).
    pub rejected: u64,
    /// Jobs that failed while mapping.
    pub failed: u64,
    /// Process-wide shared distance-cache hits (cross-request
    /// amortization counter).
    pub distance_hits: u64,
    /// Process-wide shared distance-cache misses.
    pub distance_misses: u64,
    /// Process-wide transitive-closure memo hits.
    pub closure_hits: u64,
    /// Process-wide transitive-closure memo misses.
    pub closure_misses: u64,
    /// Process-wide reliability-weighted distance-cache hits (additive
    /// field; absent on the wire decodes as 0).
    pub weighted_hits: u64,
    /// Process-wide reliability-weighted distance-cache misses.
    pub weighted_misses: u64,
    /// Process-wide hierarchical sub-routing fragment-memo hits.
    pub subroute_hits: u64,
    /// Process-wide hierarchical sub-routing fragment-memo misses.
    pub subroute_misses: u64,
    /// Plan-store hits where the fragment was byte-identical to one
    /// already cached (additive field; absent on the wire decodes as 0).
    pub plan_exact_hits: u64,
    /// Plan-store hits earned by canonicalization: a structurally
    /// isomorphic fragment under a different labeling shared the plan.
    pub plan_canonical_hits: u64,
    /// Plans loaded from the optional `--plan-store` disk tier.
    pub plan_disk_hits: u64,
    /// Plans persisted to the disk tier after a fresh compute.
    pub plan_disk_writes: u64,
}

/// One node of a job's span tree, as carried by [`Response::Trace`].
/// Timestamps are nanoseconds **relative to the root span's start**, so
/// they stay far below 2^53 and trees from different processes (a
/// router's wrapper around a shard's tree) compose without sharing a
/// clock.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanNode {
    /// Stage label, e.g. `routing:hier-route` or `intake:queue-wait`.
    pub name: String,
    /// Start offset in nanoseconds from the root span's start.
    pub start_ns: u64,
    /// End offset in nanoseconds from the root span's start.
    pub end_ns: u64,
    /// Key/value annotations, e.g. `("plan_tier", "canonical")`.
    pub notes: Vec<(String, String)>,
    /// Child spans, ordered by start offset.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Assembles completed spans (as recorded by a `trace::Tracer`) into
    /// a tree rooted at `trace::ROOT_SPAN`, rebasing every timestamp so
    /// the root starts at 0. Returns `None` when no root span was
    /// recorded. Spans whose parent is missing (dropped past the sink
    /// bound) are attached to the root rather than lost.
    #[must_use]
    pub fn from_spans(spans: &[trace::Span]) -> Option<SpanNode> {
        let root = spans.iter().find(|s| s.id == trace::ROOT_SPAN)?;
        let base = root.start_ns;
        let known: std::collections::HashSet<u64> = spans.iter().map(|s| s.id).collect();
        let mut children: std::collections::HashMap<u64, Vec<&trace::Span>> =
            std::collections::HashMap::new();
        for span in spans {
            if span.id == trace::ROOT_SPAN {
                continue;
            }
            let parent = if known.contains(&span.parent) {
                span.parent
            } else {
                trace::ROOT_SPAN
            };
            children.entry(parent).or_default().push(span);
        }
        fn build(
            span: &trace::Span,
            base: u64,
            children: &std::collections::HashMap<u64, Vec<&trace::Span>>,
        ) -> SpanNode {
            let mut kids: Vec<&trace::Span> = children.get(&span.id).cloned().unwrap_or_default();
            kids.sort_by_key(|s| (s.start_ns, s.id));
            SpanNode {
                name: span.name.clone(),
                start_ns: span.start_ns.saturating_sub(base),
                end_ns: span.end_ns.saturating_sub(base),
                notes: span.notes.clone(),
                children: kids.iter().map(|k| build(k, base, children)).collect(),
            }
        }
        Some(build(root, base, &children))
    }

    /// Renders the tree as human-readable indented text, one span per
    /// line: duration, name, then `key=value` annotations.
    #[must_use]
    pub fn render_tree(&self) -> String {
        fn walk(node: &SpanNode, depth: usize, out: &mut String) {
            let millis = (node.end_ns.saturating_sub(node.start_ns)) as f64 / 1e6;
            out.push_str(&"  ".repeat(depth));
            out.push_str(&format!("{:.3}ms {}", millis, node.name));
            for (k, v) in &node.notes {
                out.push_str(&format!(" {k}={v}"));
            }
            out.push('\n');
            for child in &node.children {
                walk(child, depth + 1, out);
            }
        }
        let mut out = String::new();
        walk(self, 0, &mut out);
        out
    }

    /// Renders the tree as a Chrome trace-event JSON array (`ph:"X"`
    /// complete events, microsecond units) loadable in Perfetto or
    /// `chrome://tracing`.
    #[must_use]
    pub fn render_chrome(&self) -> String {
        fn event(node: &SpanNode, depth: u64, out: &mut Vec<Json>) {
            let ts = node.start_ns as f64 / 1e3;
            let dur = node.end_ns.saturating_sub(node.start_ns) as f64 / 1e3;
            let args = node
                .notes
                .iter()
                .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                .collect::<Vec<_>>();
            out.push(obj(vec![
                ("name", Json::Str(node.name.clone())),
                ("ph", Json::Str("X".to_string())),
                ("ts", Json::Num(ts)),
                ("dur", Json::Num(dur)),
                ("pid", Json::Num(1.0)),
                ("tid", Json::Num(depth as f64 + 1.0)),
                ("args", Json::Obj(args)),
            ]));
            for child in &node.children {
                event(child, depth + 1, out);
            }
        }
        let mut events = Vec::new();
        event(self, 0, &mut events);
        // Offsets and microsecond conversions are finite by construction.
        Json::Arr(events).encode().expect("finite trace events")
    }
}

/// The full observability export reported by [`Response::Metrics`]: the
/// counter block plus queue-delay percentiles and per-pass timing
/// aggregates. [`MetricsBody::render`] flattens it into scraper-friendly
/// text for `qlosure-cli metrics`.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricsBody {
    /// The daemon counters (same block as [`Response::Stats`]).
    pub stats: StatsBody,
    /// Median seconds between admission and worker pickup, over the
    /// retained sample window.
    pub queue_p50: f64,
    /// 90th-percentile queue delay (seconds).
    pub queue_p90: f64,
    /// 99th-percentile queue delay (seconds).
    pub queue_p99: f64,
    /// Worst queue delay in the sample window (seconds).
    pub queue_max: f64,
    /// How many completed jobs the percentiles were computed over.
    pub queue_samples: u64,
    /// Per-pass timing aggregates as `(label, runs, total_seconds)`,
    /// sorted by label. Labels are pipeline pass labels
    /// (`stage:name`, e.g. `routing:qlosure`).
    pub passes: Vec<(String, u64, f64)>,
    /// Seconds since the service started (additive field; absent on the
    /// wire decodes as 0).
    pub uptime_seconds: f64,
    /// Jobs admitted but not yet finished — queued plus in flight
    /// (additive field; absent on the wire decodes as 0).
    pub jobs_inflight: u64,
    /// Journal events evicted from the bounded event ring, process-wide
    /// (additive field; absent on the wire decodes as 0).
    pub events_dropped: u64,
    /// Spans dropped by full per-job trace sinks, process-wide (additive
    /// field; absent on the wire decodes as 0).
    pub trace_drops: u64,
}

impl MetricsBody {
    /// Flattens the export into line-oriented `name value` /
    /// `name{label="..."} value` text a scraper can ingest directly,
    /// with `# HELP`/`# TYPE` comment lines per metric family for
    /// standard scraper compatibility. Deterministic: counters in
    /// declaration order, pass lines sorted by label (sorted here too,
    /// not just daemon-side, so repeated scrapes diff cleanly whatever
    /// encoded the body).
    #[must_use]
    pub fn render(&self) -> String {
        fn esc(label: &str) -> String {
            label.replace('\\', "\\\\").replace('"', "\\\"")
        }
        fn meta(out: &mut String, name: &str, kind: &str, help: &str) {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
        }
        let s = &self.stats;
        let mut out = String::new();
        for (name, kind, help, value) in [
            (
                "qlosure_protocol_version",
                "gauge",
                "Wire protocol version this daemon speaks.",
                s.protocol,
            ),
            (
                "qlosure_workers",
                "gauge",
                "Mapping worker threads.",
                s.workers,
            ),
            (
                "qlosure_queue_depth",
                "gauge",
                "Jobs waiting in the admission queue.",
                s.queue_depth,
            ),
            (
                "qlosure_jobs_submitted_total",
                "counter",
                "Jobs accepted since startup.",
                s.submitted,
            ),
            (
                "qlosure_jobs_completed_total",
                "counter",
                "Jobs completed successfully since startup.",
                s.completed,
            ),
            (
                "qlosure_jobs_rejected_total",
                "counter",
                "Jobs rejected at admission since startup.",
                s.rejected,
            ),
            (
                "qlosure_jobs_failed_total",
                "counter",
                "Jobs that failed while mapping since startup.",
                s.failed,
            ),
        ] {
            meta(&mut out, name, kind, help);
            out.push_str(&format!("{name} {value}\n"));
        }
        meta(
            &mut out,
            "qlosure_uptime_seconds",
            "gauge",
            "Seconds since the service started.",
        );
        out.push_str(&format!("qlosure_uptime_seconds {}\n", self.uptime_seconds));
        meta(
            &mut out,
            "qlosure_jobs_inflight",
            "gauge",
            "Jobs admitted but not yet finished.",
        );
        out.push_str(&format!("qlosure_jobs_inflight {}\n", self.jobs_inflight));
        meta(
            &mut out,
            "qlosure_events_dropped_total",
            "counter",
            "Journal events evicted from the bounded event ring.",
        );
        out.push_str(&format!(
            "qlosure_events_dropped_total {}\n",
            self.events_dropped
        ));
        meta(
            &mut out,
            "qlosure_trace_drops_total",
            "counter",
            "Spans dropped by full per-job trace sinks.",
        );
        out.push_str(&format!("qlosure_trace_drops_total {}\n", self.trace_drops));
        meta(
            &mut out,
            "qlosure_cache_hits_total",
            "counter",
            "Shared per-device cache hits, by cache.",
        );
        meta(
            &mut out,
            "qlosure_cache_misses_total",
            "counter",
            "Shared per-device cache misses, by cache.",
        );
        for (cache, hits, misses) in [
            ("distance", s.distance_hits, s.distance_misses),
            ("closure", s.closure_hits, s.closure_misses),
            ("weighted", s.weighted_hits, s.weighted_misses),
            ("subroute", s.subroute_hits, s.subroute_misses),
        ] {
            out.push_str(&format!(
                "qlosure_cache_hits_total{{cache=\"{cache}\"}} {hits}\n"
            ));
            out.push_str(&format!(
                "qlosure_cache_misses_total{{cache=\"{cache}\"}} {misses}\n"
            ));
        }
        meta(
            &mut out,
            "qlosure_plan_hits_total",
            "counter",
            "Fragment plan-store hits, by tier.",
        );
        for (tier, hits) in [
            ("exact", s.plan_exact_hits),
            ("canonical", s.plan_canonical_hits),
            ("disk", s.plan_disk_hits),
        ] {
            out.push_str(&format!(
                "qlosure_plan_hits_total{{tier=\"{tier}\"}} {hits}\n"
            ));
        }
        meta(
            &mut out,
            "qlosure_plan_disk_writes_total",
            "counter",
            "Plans persisted to the disk tier after a fresh compute.",
        );
        out.push_str(&format!(
            "qlosure_plan_disk_writes_total {}\n",
            s.plan_disk_writes
        ));
        meta(
            &mut out,
            "qlosure_queue_seconds",
            "summary",
            "Seconds between admission and worker pickup.",
        );
        for (quantile, value) in [
            ("0.5", self.queue_p50),
            ("0.9", self.queue_p90),
            ("0.99", self.queue_p99),
        ] {
            out.push_str(&format!(
                "qlosure_queue_seconds{{quantile=\"{quantile}\"}} {value}\n"
            ));
        }
        meta(
            &mut out,
            "qlosure_queue_seconds_max",
            "gauge",
            "Worst queue delay in the sample window.",
        );
        out.push_str(&format!("qlosure_queue_seconds_max {}\n", self.queue_max));
        meta(
            &mut out,
            "qlosure_queue_seconds_count",
            "counter",
            "Completed jobs the queue percentiles cover.",
        );
        out.push_str(&format!(
            "qlosure_queue_seconds_count {}\n",
            self.queue_samples
        ));
        let mut passes: Vec<&(String, u64, f64)> = self.passes.iter().collect();
        passes.sort_by(|a, b| a.0.cmp(&b.0));
        meta(
            &mut out,
            "qlosure_pass_runs_total",
            "counter",
            "Pipeline pass executions, by pass label.",
        );
        meta(
            &mut out,
            "qlosure_pass_seconds_total",
            "counter",
            "Cumulative pipeline pass wall-clock seconds, by pass label.",
        );
        for (label, runs, total) in passes {
            out.push_str(&format!(
                "qlosure_pass_runs_total{{pass=\"{}\"}} {runs}\n",
                esc(label)
            ));
            out.push_str(&format!(
                "qlosure_pass_seconds_total{{pass=\"{}\"}} {total}\n",
                esc(label)
            ));
        }
        out
    }
}

/// One point of the metrics time-series ring, carried by
/// [`Response::MetricsHistory`]: the counters a dashboard differentiates
/// into rates, snapshotted from a full [`MetricsBody`] by the daemon's
/// sampler thread.
#[derive(Clone, Debug, PartialEq)]
pub struct SampleBody {
    /// Monotone sample index (daemon-local; survives ring eviction, so a
    /// poller can detect gaps).
    pub index: u64,
    /// Uptime seconds at sample time — the series' time axis.
    pub uptime_seconds: f64,
    /// Jobs accepted since startup.
    pub submitted: u64,
    /// Jobs completed since startup.
    pub completed: u64,
    /// Jobs failed since startup.
    pub failed: u64,
    /// Jobs rejected at admission since startup.
    pub rejected: u64,
    /// Admission-queue depth at sample time.
    pub queue_depth: u64,
    /// Jobs admitted but not yet finished at sample time.
    pub jobs_inflight: u64,
    /// 99th-percentile queue delay at sample time (seconds).
    pub queue_p99: f64,
    /// Shared distance-cache hits since startup.
    pub distance_hits: u64,
    /// Shared distance-cache misses since startup.
    pub distance_misses: u64,
    /// Plan-store exact-tier hits since startup.
    pub plan_exact_hits: u64,
    /// Plan-store canonical-tier hits since startup.
    pub plan_canonical_hits: u64,
    /// Plan-store disk-tier hits since startup.
    pub plan_disk_hits: u64,
    /// Sub-routing fragment-memo hits since startup.
    pub subroute_hits: u64,
    /// Sub-routing fragment-memo misses since startup.
    pub subroute_misses: u64,
    /// Journal events evicted from the bounded ring since startup.
    pub events_dropped: u64,
    /// Spans dropped by full trace sinks since startup.
    pub trace_drops: u64,
}

impl SampleBody {
    /// Projects a full metrics export down to the time-series columns.
    #[must_use]
    pub fn from_metrics(index: u64, m: &MetricsBody) -> SampleBody {
        SampleBody {
            index,
            uptime_seconds: m.uptime_seconds,
            submitted: m.stats.submitted,
            completed: m.stats.completed,
            failed: m.stats.failed,
            rejected: m.stats.rejected,
            queue_depth: m.stats.queue_depth,
            jobs_inflight: m.jobs_inflight,
            queue_p99: m.queue_p99,
            distance_hits: m.stats.distance_hits,
            distance_misses: m.stats.distance_misses,
            plan_exact_hits: m.stats.plan_exact_hits,
            plan_canonical_hits: m.stats.plan_canonical_hits,
            plan_disk_hits: m.stats.plan_disk_hits,
            subroute_hits: m.stats.subroute_hits,
            subroute_misses: m.stats.subroute_misses,
            events_dropped: m.events_dropped,
            trace_drops: m.trace_drops,
        }
    }

    /// Total cache probes (distance + sub-routing) — the denominator of
    /// the windowed hit-rate.
    fn cache_probes(&self) -> u64 {
        self.distance_hits + self.distance_misses + self.subroute_hits + self.subroute_misses
    }

    /// Total cache hits (distance + sub-routing).
    fn cache_hits(&self) -> u64 {
        self.distance_hits + self.subroute_hits
    }
}

/// Rates computed over one shard's retained sample window, carried by
/// [`SeriesBody`]. All zeros when the window holds fewer than two
/// samples (no interval to differentiate over).
#[derive(Clone, Debug, PartialEq)]
pub struct RatesBody {
    /// Seconds between the oldest and newest retained sample.
    pub window_seconds: f64,
    /// Completed jobs per second over the window.
    pub jobs_per_second: f64,
    /// Cache hits ÷ cache probes over the window (distance +
    /// sub-routing), in `[0, 1]`; 0 when the window saw no probes.
    pub cache_hit_rate: f64,
    /// Newest queue depth minus oldest (signed): positive means the
    /// backlog is growing.
    pub queue_depth_trend: f64,
}

impl RatesBody {
    /// Differentiates a sample window into rates. Total: degenerate
    /// windows (under two samples, zero elapsed time, counter resets)
    /// yield zeros, never NaN/infinity — the wire rejects non-finite
    /// numbers.
    #[must_use]
    pub fn over(samples: &[SampleBody]) -> RatesBody {
        let (Some(first), Some(last)) = (samples.first(), samples.last()) else {
            return RatesBody {
                window_seconds: 0.0,
                jobs_per_second: 0.0,
                cache_hit_rate: 0.0,
                queue_depth_trend: 0.0,
            };
        };
        let window = (last.uptime_seconds - first.uptime_seconds).max(0.0);
        let completed = last.completed.saturating_sub(first.completed);
        let probes = last.cache_probes().saturating_sub(first.cache_probes());
        let hits = last.cache_hits().saturating_sub(first.cache_hits());
        RatesBody {
            window_seconds: window,
            jobs_per_second: if window > 0.0 {
                completed as f64 / window
            } else {
                0.0
            },
            cache_hit_rate: if probes > 0 {
                hits as f64 / probes as f64
            } else {
                0.0
            },
            queue_depth_trend: last.queue_depth as f64 - first.queue_depth as f64,
        }
    }
}

/// One shard's slice of a [`Response::MetricsHistory`]: its retained
/// sample window plus the rates computed over it. A lone daemon reports
/// exactly one series (shard 0); a router reports one per shard, with
/// `shard` relabeled to the fleet index.
#[derive(Clone, Debug, PartialEq)]
pub struct SeriesBody {
    /// Fleet shard index (0 for an unfronted daemon).
    pub shard: u64,
    /// The retained window, oldest first, aligned by `index`.
    pub samples: Vec<SampleBody>,
    /// Rates over this window.
    pub rates: RatesBody,
}

/// The metrics time-series window carried by
/// [`Response::MetricsHistory`].
#[derive(Clone, Debug, PartialEq)]
pub struct HistoryBody {
    /// Seconds between consecutive samples (the daemon's `--obs-sample`).
    pub sample_seconds: f64,
    /// Per-shard series, ordered by shard index.
    pub series: Vec<SeriesBody>,
}

/// One journal event carried by [`Response::Events`].
#[derive(Clone, Debug, PartialEq)]
pub struct EventBody {
    /// Monotone per-daemon sequence number (starting at 1). A router
    /// fronting `n` shards remaps it to `seq * (n + 1) + stream` the
    /// same way it remaps job IDs — `stream` is the shard index, with
    /// the router's own journal as stream `n` — so merged sequence
    /// numbers stay monotone per stream and exactly invertible.
    pub seq: u64,
    /// Seconds before the response was generated (age, not an absolute
    /// stamp — ages compose across processes that share no clock).
    pub age_seconds: f64,
    /// Severity.
    pub level: obs::Level,
    /// Emitting subsystem, e.g. `plan-store` or `watchdog`.
    pub subsystem: String,
    /// The event message.
    pub message: String,
    /// Free-form key/value payload.
    pub fields: Vec<(String, String)>,
}

/// The journal window carried by [`Response::Events`].
#[derive(Clone, Debug, PartialEq)]
pub struct EventsBody {
    /// Events evicted from the bounded ring since startup.
    pub dropped: u64,
    /// The matching retained events, oldest first.
    pub events: Vec<EventBody>,
}

/// Typed error categories carried by [`Response::Error`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame was not a valid request.
    BadRequest,
    /// The request's `"v"` does not match the daemon's protocol version.
    VersionMismatch,
    /// The frame exceeded [`MAX_FRAME`] bytes.
    Oversized,
    /// The named backend does not resolve.
    UnknownBackend,
    /// The named mapper does not resolve.
    UnknownMapper,
    /// The inline QASM failed to parse or convert.
    QasmError,
    /// The circuit needs more qubits than the device has.
    DeviceTooSmall,
    /// The admission queue is full.
    QueueFull,
    /// The polled ID was never assigned or its result was evicted.
    UnknownId,
    /// The daemon is shutting down and no longer accepts work.
    ShuttingDown,
    /// The mapper failed or produced an unverifiable routing.
    MappingFailed,
    /// The server is at its live-connection cap; retry later. (Additive
    /// spelling — pre-fleet daemons never emit it.)
    Busy,
    /// The router could not reach the shard that owns this request.
    /// (Additive spelling — only `qlosure-router` emits it.)
    ShardUnavailable,
}

impl ErrorCode {
    /// The wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::VersionMismatch => "version-mismatch",
            ErrorCode::Oversized => "oversized",
            ErrorCode::UnknownBackend => "unknown-backend",
            ErrorCode::UnknownMapper => "unknown-mapper",
            ErrorCode::QasmError => "qasm-error",
            ErrorCode::DeviceTooSmall => "device-too-small",
            ErrorCode::QueueFull => "queue-full",
            ErrorCode::UnknownId => "unknown-id",
            ErrorCode::ShuttingDown => "shutting-down",
            ErrorCode::MappingFailed => "mapping-failed",
            ErrorCode::Busy => "busy",
            ErrorCode::ShardUnavailable => "shard-unavailable",
        }
    }

    /// Parses the wire spelling.
    pub fn from_wire(s: &str) -> Option<ErrorCode> {
        [
            ErrorCode::BadRequest,
            ErrorCode::VersionMismatch,
            ErrorCode::Oversized,
            ErrorCode::UnknownBackend,
            ErrorCode::UnknownMapper,
            ErrorCode::QasmError,
            ErrorCode::DeviceTooSmall,
            ErrorCode::QueueFull,
            ErrorCode::UnknownId,
            ErrorCode::ShuttingDown,
            ErrorCode::MappingFailed,
            ErrorCode::Busy,
            ErrorCode::ShardUnavailable,
        ]
        .into_iter()
        .find(|c| c.as_str() == s)
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A daemon→client frame.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// The job was admitted under this ID.
    Submitted {
        /// Request ID for later polling.
        id: u64,
    },
    /// The job is still queued or running.
    Pending {
        /// The polled ID.
        id: u64,
        /// `true` once the job left the admission queue toward the
        /// workers (running or about to run — past the point where
        /// priority can reorder it).
        running: bool,
    },
    /// The job finished and verified.
    Done {
        /// The polled ID.
        id: u64,
        /// The result summary.
        summary: Summary,
    },
    /// The job ran but failed (mapper error or verification failure).
    Failed {
        /// The polled ID.
        id: u64,
        /// Human-readable failure.
        message: String,
    },
    /// Daemon counters.
    Stats(StatsBody),
    /// The full observability export (additive op; see
    /// [`Request::Metrics`]).
    Metrics(MetricsBody),
    /// The metrics time-series window (additive op; see
    /// [`Request::MetricsHistory`]).
    MetricsHistory(HistoryBody),
    /// The journal window (additive op; see [`Request::Events`]).
    Events(EventsBody),
    /// A completed job's span tree (additive op; see [`Request::Trace`]).
    Trace {
        /// The polled ID.
        id: u64,
        /// The trace identity as 16 lowercase hex digits, generated at
        /// admission and preserved verbatim by any router that wraps the
        /// tree — what correlates a stitched trace across the fleet.
        trace_id: String,
        /// The span tree, rooted at the job's root span.
        root: SpanNode,
    },
    /// Acknowledgement of a shutdown request.
    ShuttingDown {
        /// Jobs still queued or in flight that will drain before exit.
        pending: u64,
    },
    /// A typed request-level error.
    Error {
        /// Machine-readable category.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

/// Why a frame failed to decode.
#[derive(Clone, Debug, PartialEq)]
pub enum ProtoError {
    /// The frame exceeds [`MAX_FRAME`] bytes.
    Oversized {
        /// Observed frame length.
        len: usize,
    },
    /// The frame is not valid JSON.
    Json(json::JsonError),
    /// The frame is valid JSON but not a valid protocol message.
    Shape(String),
    /// The frame's `"v"` field does not match [`PROTOCOL_VERSION`].
    Version {
        /// The version the peer sent.
        got: u64,
    },
}

impl ProtoError {
    /// The [`ErrorCode`] a daemon should answer this decode failure with.
    pub fn code(&self) -> ErrorCode {
        match self {
            ProtoError::Oversized { .. } => ErrorCode::Oversized,
            ProtoError::Version { .. } => ErrorCode::VersionMismatch,
            ProtoError::Json(_) | ProtoError::Shape(_) => ErrorCode::BadRequest,
        }
    }
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Oversized { len } => {
                write!(f, "frame of {len} bytes exceeds the {MAX_FRAME}-byte limit")
            }
            ProtoError::Json(e) => write!(f, "invalid JSON: {e}"),
            ProtoError::Shape(s) => write!(f, "invalid message: {s}"),
            ProtoError::Version { got } => write!(
                f,
                "protocol version {got} does not match daemon version {PROTOCOL_VERSION}"
            ),
        }
    }
}

impl std::error::Error for ProtoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtoError::Json(e) => Some(e),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn obj(members: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        members
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn num_u64(x: u64) -> Json {
    // Protocol integers stay far below 2^53; debug-assert the invariant.
    debug_assert!(x <= (1 << 53));
    Json::Num(x as f64)
}

fn versioned(op: &str, mut rest: Vec<(&str, Json)>) -> Json {
    let mut members = vec![
        ("v", num_u64(PROTOCOL_VERSION)),
        ("op", Json::Str(op.to_string())),
    ];
    members.append(&mut rest);
    obj(members)
}

/// Encodes a request as one JSON line (no trailing newline).
///
/// # Errors
///
/// [`json::EncodeError`] when the request carries a non-finite number —
/// JSON cannot represent NaN/±infinity, and emitting a lossy stand-in
/// would break the `parse(encode(x)) == x` fixed point.
pub fn encode_request(request: &Request) -> Result<String, json::EncodeError> {
    let value = match request {
        Request::Submit {
            backend,
            mapper,
            qasm,
            priority,
            fidelity,
            strategy,
            trace,
        } => {
            let mut members = vec![
                ("backend", Json::Str(backend.clone())),
                ("mapper", Json::Str(mapper.clone())),
                ("qasm", Json::Str(qasm.clone())),
                ("priority", Json::Str(priority.as_str().to_string())),
                ("fidelity", Json::Bool(*fidelity)),
                ("strategy", Json::Str(strategy.as_str().to_string())),
            ];
            // Additive field: only emitted when set, so pre-trace
            // daemons never see it.
            if *trace {
                members.push(("trace", Json::Bool(true)));
            }
            versioned("submit", members)
        }
        Request::Poll { id } => versioned("poll", vec![("id", num_u64(*id))]),
        Request::Trace { id } => versioned("trace", vec![("id", num_u64(*id))]),
        Request::Stats => versioned("stats", vec![]),
        Request::Metrics => versioned("metrics", vec![]),
        Request::MetricsHistory => versioned("metrics-history", vec![]),
        Request::Events {
            min_level,
            after_seq,
        } => versioned(
            "events",
            vec![
                ("min_level", Json::Str(min_level.as_str().to_string())),
                ("after_seq", num_u64(*after_seq)),
            ],
        ),
        Request::Shutdown => versioned("shutdown", vec![]),
    };
    value.encode()
}

/// The counter block, shared by the `stats` response and the `stats`
/// field of the `metrics` response.
fn stats_members(stats: &StatsBody) -> Vec<(&'static str, Json)> {
    vec![
        ("protocol", num_u64(stats.protocol)),
        ("workers", num_u64(stats.workers)),
        ("queue_depth", num_u64(stats.queue_depth)),
        ("submitted", num_u64(stats.submitted)),
        ("completed", num_u64(stats.completed)),
        ("rejected", num_u64(stats.rejected)),
        ("failed", num_u64(stats.failed)),
        ("distance_hits", num_u64(stats.distance_hits)),
        ("distance_misses", num_u64(stats.distance_misses)),
        ("closure_hits", num_u64(stats.closure_hits)),
        ("closure_misses", num_u64(stats.closure_misses)),
        ("weighted_hits", num_u64(stats.weighted_hits)),
        ("weighted_misses", num_u64(stats.weighted_misses)),
        ("subroute_hits", num_u64(stats.subroute_hits)),
        ("subroute_misses", num_u64(stats.subroute_misses)),
        ("plan_exact_hits", num_u64(stats.plan_exact_hits)),
        ("plan_canonical_hits", num_u64(stats.plan_canonical_hits)),
        ("plan_disk_hits", num_u64(stats.plan_disk_hits)),
        ("plan_disk_writes", num_u64(stats.plan_disk_writes)),
    ]
}

fn encode_span(node: &SpanNode) -> Json {
    let mut members = vec![
        ("name", Json::Str(node.name.clone())),
        ("start_ns", num_u64(node.start_ns)),
        ("end_ns", num_u64(node.end_ns)),
    ];
    if !node.notes.is_empty() {
        members.push((
            "notes",
            Json::Obj(
                node.notes
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                    .collect(),
            ),
        ));
    }
    if !node.children.is_empty() {
        members.push((
            "children",
            Json::Arr(node.children.iter().map(encode_span).collect()),
        ));
    }
    obj(members)
}

fn encode_summary(s: &Summary) -> Json {
    let layout = |l: &[u32]| Json::Arr(l.iter().map(|&p| num_u64(u64::from(p))).collect());
    let mut members = vec![
        ("swaps", num_u64(s.swaps)),
        ("depth", num_u64(s.depth)),
        ("qops", num_u64(s.qops)),
        ("initial_layout", layout(&s.initial_layout)),
        ("final_layout", layout(&s.final_layout)),
        ("fingerprint", Json::Str(s.fingerprint.clone())),
        ("pipeline", Json::Str(s.pipeline.clone())),
        (
            "pass_seconds",
            Json::Obj(
                s.pass_seconds
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::Num(*v)))
                    .collect(),
            ),
        ),
        ("seconds", Json::Num(s.seconds)),
        ("queue_seconds", Json::Num(s.queue_seconds)),
        ("seq", num_u64(s.seq)),
        ("verified", Json::Bool(s.verified)),
    ];
    if let Some(ppm) = s.success_ppm {
        members.push(("success_ppm", Json::Num(ppm as f64)));
    }
    obj(members)
}

fn encode_sample(s: &SampleBody) -> Json {
    obj(vec![
        ("index", num_u64(s.index)),
        ("uptime_seconds", Json::Num(s.uptime_seconds)),
        ("submitted", num_u64(s.submitted)),
        ("completed", num_u64(s.completed)),
        ("failed", num_u64(s.failed)),
        ("rejected", num_u64(s.rejected)),
        ("queue_depth", num_u64(s.queue_depth)),
        ("jobs_inflight", num_u64(s.jobs_inflight)),
        ("queue_p99", Json::Num(s.queue_p99)),
        ("distance_hits", num_u64(s.distance_hits)),
        ("distance_misses", num_u64(s.distance_misses)),
        ("plan_exact_hits", num_u64(s.plan_exact_hits)),
        ("plan_canonical_hits", num_u64(s.plan_canonical_hits)),
        ("plan_disk_hits", num_u64(s.plan_disk_hits)),
        ("subroute_hits", num_u64(s.subroute_hits)),
        ("subroute_misses", num_u64(s.subroute_misses)),
        ("events_dropped", num_u64(s.events_dropped)),
        ("trace_drops", num_u64(s.trace_drops)),
    ])
}

fn encode_series(series: &SeriesBody) -> Json {
    obj(vec![
        ("shard", num_u64(series.shard)),
        (
            "samples",
            Json::Arr(series.samples.iter().map(encode_sample).collect()),
        ),
        (
            "rates",
            obj(vec![
                ("window_seconds", Json::Num(series.rates.window_seconds)),
                ("jobs_per_second", Json::Num(series.rates.jobs_per_second)),
                ("cache_hit_rate", Json::Num(series.rates.cache_hit_rate)),
                (
                    "queue_depth_trend",
                    Json::Num(series.rates.queue_depth_trend),
                ),
            ]),
        ),
    ])
}

fn encode_event(event: &EventBody) -> Json {
    let mut members = vec![
        ("seq", num_u64(event.seq)),
        ("age_seconds", Json::Num(event.age_seconds)),
        ("level", Json::Str(event.level.as_str().to_string())),
        ("subsystem", Json::Str(event.subsystem.clone())),
        ("message", Json::Str(event.message.clone())),
    ];
    if !event.fields.is_empty() {
        members.push((
            "fields",
            Json::Obj(
                event
                    .fields
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                    .collect(),
            ),
        ));
    }
    obj(members)
}

/// Encodes a response as one JSON line (no trailing newline).
///
/// # Errors
///
/// [`json::EncodeError`] when the response carries a non-finite number
/// (e.g. a NaN timing in a [`Summary`]); see [`encode_request`].
pub fn encode_response(response: &Response) -> Result<String, json::EncodeError> {
    let value = match response {
        Response::Submitted { id } => versioned("submitted", vec![("id", num_u64(*id))]),
        Response::Pending { id, running } => versioned(
            "pending",
            vec![("id", num_u64(*id)), ("running", Json::Bool(*running))],
        ),
        Response::Done { id, summary } => versioned(
            "done",
            vec![("id", num_u64(*id)), ("summary", encode_summary(summary))],
        ),
        Response::Failed { id, message } => versioned(
            "failed",
            vec![
                ("id", num_u64(*id)),
                ("message", Json::Str(message.clone())),
            ],
        ),
        Response::Stats(stats) => versioned("stats", stats_members(stats)),
        Response::Metrics(metrics) => versioned(
            "metrics",
            vec![
                ("stats", obj(stats_members(&metrics.stats))),
                ("queue_p50", Json::Num(metrics.queue_p50)),
                ("queue_p90", Json::Num(metrics.queue_p90)),
                ("queue_p99", Json::Num(metrics.queue_p99)),
                ("queue_max", Json::Num(metrics.queue_max)),
                ("queue_samples", num_u64(metrics.queue_samples)),
                ("uptime_seconds", Json::Num(metrics.uptime_seconds)),
                ("jobs_inflight", num_u64(metrics.jobs_inflight)),
                ("events_dropped", num_u64(metrics.events_dropped)),
                ("trace_drops", num_u64(metrics.trace_drops)),
                (
                    "passes",
                    Json::Obj(
                        metrics
                            .passes
                            .iter()
                            .map(|(label, runs, total)| {
                                (
                                    label.clone(),
                                    Json::Arr(vec![num_u64(*runs), Json::Num(*total)]),
                                )
                            })
                            .collect(),
                    ),
                ),
            ],
        ),
        Response::MetricsHistory(history) => versioned(
            "metrics-history",
            vec![
                ("sample_seconds", Json::Num(history.sample_seconds)),
                (
                    "series",
                    Json::Arr(history.series.iter().map(encode_series).collect()),
                ),
            ],
        ),
        Response::Events(events) => versioned(
            "events",
            vec![
                ("dropped", num_u64(events.dropped)),
                (
                    "events",
                    Json::Arr(events.events.iter().map(encode_event).collect()),
                ),
            ],
        ),
        Response::Trace { id, trace_id, root } => versioned(
            "trace",
            vec![
                ("id", num_u64(*id)),
                ("trace_id", Json::Str(trace_id.clone())),
                ("root", encode_span(root)),
            ],
        ),
        Response::ShuttingDown { pending } => {
            versioned("shutting-down", vec![("pending", num_u64(*pending))])
        }
        Response::Error { code, message } => versioned(
            "error",
            vec![
                ("code", Json::Str(code.as_str().to_string())),
                ("message", Json::Str(message.clone())),
            ],
        ),
    };
    value.encode()
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn shape(message: impl Into<String>) -> ProtoError {
    ProtoError::Shape(message.into())
}

/// Decodes a frame into its JSON value, checking size and version.
fn decode_frame(line: &str) -> Result<Json, ProtoError> {
    if line.len() > MAX_FRAME {
        return Err(ProtoError::Oversized { len: line.len() });
    }
    let value = json::parse(line).map_err(ProtoError::Json)?;
    if value.as_obj().is_none() {
        return Err(shape("frame is not a JSON object"));
    }
    let v = value
        .get("v")
        .and_then(Json::as_u64)
        .ok_or_else(|| shape("missing protocol version field `v`"))?;
    if v != PROTOCOL_VERSION {
        return Err(ProtoError::Version { got: v });
    }
    Ok(value)
}

fn field<'a>(value: &'a Json, name: &str) -> Result<&'a Json, ProtoError> {
    value
        .get(name)
        .ok_or_else(|| shape(format!("missing field `{name}`")))
}

fn str_field(value: &Json, name: &str) -> Result<String, ProtoError> {
    field(value, name)?
        .as_str()
        .map(ToString::to_string)
        .ok_or_else(|| shape(format!("field `{name}` must be a string")))
}

fn u64_field(value: &Json, name: &str) -> Result<u64, ProtoError> {
    field(value, name)?
        .as_u64()
        .ok_or_else(|| shape(format!("field `{name}` must be a non-negative integer")))
}

fn f64_field(value: &Json, name: &str) -> Result<f64, ProtoError> {
    field(value, name)?
        .as_f64()
        .ok_or_else(|| shape(format!("field `{name}` must be a number")))
}

fn bool_field(value: &Json, name: &str) -> Result<bool, ProtoError> {
    field(value, name)?
        .as_bool()
        .ok_or_else(|| shape(format!("field `{name}` must be a boolean")))
}

/// Additive integer field: absent decodes as 0 (so stats responses from
/// daemons predating the field still parse), present must be an integer.
fn opt_u64_field(value: &Json, name: &str) -> Result<u64, ProtoError> {
    match value.get(name) {
        None => Ok(0),
        Some(x) => x
            .as_u64()
            .ok_or_else(|| shape(format!("field `{name}` must be a non-negative integer"))),
    }
}

/// Additive number field: absent decodes as 0.0, present must be a
/// number.
fn opt_f64_field(value: &Json, name: &str) -> Result<f64, ProtoError> {
    match value.get(name) {
        None => Ok(0.0),
        Some(x) => x
            .as_f64()
            .ok_or_else(|| shape(format!("field `{name}` must be a number"))),
    }
}

/// Additive boolean field: absent decodes as `false`, present must be a
/// boolean.
fn opt_bool_field(value: &Json, name: &str) -> Result<bool, ProtoError> {
    match value.get(name) {
        None => Ok(false),
        Some(x) => x
            .as_bool()
            .ok_or_else(|| shape(format!("field `{name}` must be a boolean"))),
    }
}

/// Parses one request frame.
///
/// # Errors
///
/// A typed [`ProtoError`] for oversized, malformed, version-mismatched or
/// structurally invalid frames; arbitrary input never panics.
pub fn parse_request(line: &str) -> Result<Request, ProtoError> {
    let value = decode_frame(line)?;
    let op = str_field(&value, "op")?;
    match op.as_str() {
        "submit" => {
            let priority_text = str_field(&value, "priority")?;
            let priority = Priority::from_wire(&priority_text)
                .ok_or_else(|| shape(format!("unknown priority `{priority_text}`")))?;
            // Additive field: absent means flat (pre-strategy clients).
            let strategy = match value.get("strategy") {
                None => Strategy::Flat,
                Some(x) => {
                    let text = x
                        .as_str()
                        .ok_or_else(|| shape("field `strategy` must be a string"))?;
                    Strategy::from_wire(text)
                        .ok_or_else(|| shape(format!("unknown strategy `{text}`")))?
                }
            };
            Ok(Request::Submit {
                backend: str_field(&value, "backend")?,
                mapper: str_field(&value, "mapper")?,
                qasm: str_field(&value, "qasm")?,
                priority,
                fidelity: bool_field(&value, "fidelity")?,
                strategy,
                // Additive field: absent means no trace retention.
                trace: opt_bool_field(&value, "trace")?,
            })
        }
        "poll" => Ok(Request::Poll {
            id: u64_field(&value, "id")?,
        }),
        "trace" => Ok(Request::Trace {
            id: u64_field(&value, "id")?,
        }),
        "stats" => Ok(Request::Stats),
        "metrics" => Ok(Request::Metrics),
        "metrics-history" => Ok(Request::MetricsHistory),
        "events" => {
            // Both fields are additive-style optional: a bare `events`
            // frame means "everything retained, any level".
            let min_level = match value.get("min_level") {
                None => obs::Level::Debug,
                Some(x) => {
                    let text = x
                        .as_str()
                        .ok_or_else(|| shape("field `min_level` must be a string"))?;
                    obs::Level::parse(text)
                        .ok_or_else(|| shape(format!("unknown level `{text}`")))?
                }
            };
            Ok(Request::Events {
                min_level,
                after_seq: opt_u64_field(&value, "after_seq")?,
            })
        }
        "shutdown" => Ok(Request::Shutdown),
        other => Err(shape(format!("unknown request op `{other}`"))),
    }
}

fn parse_layout(value: &Json, name: &str) -> Result<Vec<u32>, ProtoError> {
    field(value, name)?
        .as_arr()
        .ok_or_else(|| shape(format!("field `{name}` must be an array")))?
        .iter()
        .map(|x| {
            x.as_u64()
                .filter(|&p| p <= u64::from(u32::MAX))
                .map(|p| p as u32)
                .ok_or_else(|| shape(format!("field `{name}` must hold physical qubit indices")))
        })
        .collect()
}

fn parse_summary(value: &Json) -> Result<Summary, ProtoError> {
    let passes = field(value, "pass_seconds")?
        .as_obj()
        .ok_or_else(|| shape("field `pass_seconds` must be an object"))?
        .iter()
        .map(|(k, v)| {
            v.as_f64()
                .map(|s| (k.clone(), s))
                .ok_or_else(|| shape("pass timings must be numbers"))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let success_ppm = match value.get("success_ppm") {
        None => None,
        Some(x) => Some(
            x.as_i64()
                .ok_or_else(|| shape("field `success_ppm` must be an integer"))?,
        ),
    };
    Ok(Summary {
        swaps: u64_field(value, "swaps")?,
        depth: u64_field(value, "depth")?,
        qops: u64_field(value, "qops")?,
        initial_layout: parse_layout(value, "initial_layout")?,
        final_layout: parse_layout(value, "final_layout")?,
        fingerprint: str_field(value, "fingerprint")?,
        pipeline: str_field(value, "pipeline")?,
        pass_seconds: passes,
        seconds: f64_field(value, "seconds")?,
        queue_seconds: f64_field(value, "queue_seconds")?,
        seq: u64_field(value, "seq")?,
        verified: bool_field(value, "verified")?,
        success_ppm,
    })
}

/// Parses a counter block — the top level of a `stats` response or the
/// `stats` member of a `metrics` response.
fn parse_stats(value: &Json) -> Result<StatsBody, ProtoError> {
    Ok(StatsBody {
        protocol: u64_field(value, "protocol")?,
        workers: u64_field(value, "workers")?,
        queue_depth: u64_field(value, "queue_depth")?,
        submitted: u64_field(value, "submitted")?,
        completed: u64_field(value, "completed")?,
        rejected: u64_field(value, "rejected")?,
        failed: u64_field(value, "failed")?,
        distance_hits: u64_field(value, "distance_hits")?,
        distance_misses: u64_field(value, "distance_misses")?,
        closure_hits: u64_field(value, "closure_hits")?,
        closure_misses: u64_field(value, "closure_misses")?,
        weighted_hits: opt_u64_field(value, "weighted_hits")?,
        weighted_misses: opt_u64_field(value, "weighted_misses")?,
        subroute_hits: opt_u64_field(value, "subroute_hits")?,
        subroute_misses: opt_u64_field(value, "subroute_misses")?,
        plan_exact_hits: opt_u64_field(value, "plan_exact_hits")?,
        plan_canonical_hits: opt_u64_field(value, "plan_canonical_hits")?,
        plan_disk_hits: opt_u64_field(value, "plan_disk_hits")?,
        plan_disk_writes: opt_u64_field(value, "plan_disk_writes")?,
    })
}

/// Parses the `passes` object of a `metrics` response: label →
/// `[runs, total_seconds]`.
fn parse_passes(value: &Json) -> Result<Vec<(String, u64, f64)>, ProtoError> {
    field(value, "passes")?
        .as_obj()
        .ok_or_else(|| shape("field `passes` must be an object"))?
        .iter()
        .map(|(label, entry)| {
            let pair = entry
                .as_arr()
                .filter(|a| a.len() == 2)
                .ok_or_else(|| shape("pass aggregates must be [runs, total_seconds] pairs"))?;
            let runs = pair[0]
                .as_u64()
                .ok_or_else(|| shape("pass runs must be a non-negative integer"))?;
            let total = pair[1]
                .as_f64()
                .ok_or_else(|| shape("pass total seconds must be a number"))?;
            Ok((label.clone(), runs, total))
        })
        .collect()
}

fn parse_sample(value: &Json) -> Result<SampleBody, ProtoError> {
    Ok(SampleBody {
        index: u64_field(value, "index")?,
        uptime_seconds: f64_field(value, "uptime_seconds")?,
        submitted: u64_field(value, "submitted")?,
        completed: u64_field(value, "completed")?,
        failed: u64_field(value, "failed")?,
        rejected: u64_field(value, "rejected")?,
        queue_depth: u64_field(value, "queue_depth")?,
        jobs_inflight: u64_field(value, "jobs_inflight")?,
        queue_p99: f64_field(value, "queue_p99")?,
        distance_hits: u64_field(value, "distance_hits")?,
        distance_misses: u64_field(value, "distance_misses")?,
        plan_exact_hits: u64_field(value, "plan_exact_hits")?,
        plan_canonical_hits: u64_field(value, "plan_canonical_hits")?,
        plan_disk_hits: u64_field(value, "plan_disk_hits")?,
        subroute_hits: u64_field(value, "subroute_hits")?,
        subroute_misses: u64_field(value, "subroute_misses")?,
        events_dropped: opt_u64_field(value, "events_dropped")?,
        trace_drops: opt_u64_field(value, "trace_drops")?,
    })
}

fn parse_series(value: &Json) -> Result<SeriesBody, ProtoError> {
    let samples = field(value, "samples")?
        .as_arr()
        .ok_or_else(|| shape("field `samples` must be an array"))?
        .iter()
        .map(parse_sample)
        .collect::<Result<Vec<_>, _>>()?;
    let rates = field(value, "rates")?;
    Ok(SeriesBody {
        shard: u64_field(value, "shard")?,
        samples,
        rates: RatesBody {
            window_seconds: f64_field(rates, "window_seconds")?,
            jobs_per_second: f64_field(rates, "jobs_per_second")?,
            cache_hit_rate: f64_field(rates, "cache_hit_rate")?,
            queue_depth_trend: f64_field(rates, "queue_depth_trend")?,
        },
    })
}

fn parse_event(value: &Json) -> Result<EventBody, ProtoError> {
    let level_text = str_field(value, "level")?;
    let level = obs::Level::parse(&level_text)
        .ok_or_else(|| shape(format!("unknown level `{level_text}`")))?;
    let fields = match value.get("fields") {
        None => Vec::new(),
        Some(x) => x
            .as_obj()
            .ok_or_else(|| shape("field `fields` must be an object"))?
            .iter()
            .map(|(k, v)| {
                v.as_str()
                    .map(|s| (k.clone(), s.to_string()))
                    .ok_or_else(|| shape("event fields must be strings"))
            })
            .collect::<Result<Vec<_>, _>>()?,
    };
    Ok(EventBody {
        seq: u64_field(value, "seq")?,
        age_seconds: f64_field(value, "age_seconds")?,
        level,
        subsystem: str_field(value, "subsystem")?,
        message: str_field(value, "message")?,
        fields,
    })
}

/// Parses one span-tree node. Recursion is bounded by the JSON parser's
/// depth limit, which already rejected pathologically nested frames.
fn parse_span(value: &Json) -> Result<SpanNode, ProtoError> {
    let notes = match value.get("notes") {
        None => Vec::new(),
        Some(x) => x
            .as_obj()
            .ok_or_else(|| shape("field `notes` must be an object"))?
            .iter()
            .map(|(k, v)| {
                v.as_str()
                    .map(|s| (k.clone(), s.to_string()))
                    .ok_or_else(|| shape("span notes must be strings"))
            })
            .collect::<Result<Vec<_>, _>>()?,
    };
    let children = match value.get("children") {
        None => Vec::new(),
        Some(x) => x
            .as_arr()
            .ok_or_else(|| shape("field `children` must be an array"))?
            .iter()
            .map(parse_span)
            .collect::<Result<Vec<_>, _>>()?,
    };
    Ok(SpanNode {
        name: str_field(value, "name")?,
        start_ns: u64_field(value, "start_ns")?,
        end_ns: u64_field(value, "end_ns")?,
        notes,
        children,
    })
}

/// Parses one response frame.
///
/// # Errors
///
/// A typed [`ProtoError`], mirroring [`parse_request`]; arbitrary input
/// never panics.
pub fn parse_response(line: &str) -> Result<Response, ProtoError> {
    let value = decode_frame(line)?;
    let op = str_field(&value, "op")?;
    match op.as_str() {
        "submitted" => Ok(Response::Submitted {
            id: u64_field(&value, "id")?,
        }),
        "pending" => Ok(Response::Pending {
            id: u64_field(&value, "id")?,
            running: bool_field(&value, "running")?,
        }),
        "done" => Ok(Response::Done {
            id: u64_field(&value, "id")?,
            summary: parse_summary(field(&value, "summary")?)?,
        }),
        "failed" => Ok(Response::Failed {
            id: u64_field(&value, "id")?,
            message: str_field(&value, "message")?,
        }),
        "stats" => Ok(Response::Stats(parse_stats(&value)?)),
        "metrics" => Ok(Response::Metrics(MetricsBody {
            stats: parse_stats(field(&value, "stats")?)?,
            queue_p50: f64_field(&value, "queue_p50")?,
            queue_p90: f64_field(&value, "queue_p90")?,
            queue_p99: f64_field(&value, "queue_p99")?,
            queue_max: f64_field(&value, "queue_max")?,
            queue_samples: u64_field(&value, "queue_samples")?,
            passes: parse_passes(&value)?,
            uptime_seconds: opt_f64_field(&value, "uptime_seconds")?,
            jobs_inflight: opt_u64_field(&value, "jobs_inflight")?,
            events_dropped: opt_u64_field(&value, "events_dropped")?,
            trace_drops: opt_u64_field(&value, "trace_drops")?,
        })),
        "metrics-history" => Ok(Response::MetricsHistory(HistoryBody {
            sample_seconds: f64_field(&value, "sample_seconds")?,
            series: field(&value, "series")?
                .as_arr()
                .ok_or_else(|| shape("field `series` must be an array"))?
                .iter()
                .map(parse_series)
                .collect::<Result<Vec<_>, _>>()?,
        })),
        "events" => Ok(Response::Events(EventsBody {
            dropped: u64_field(&value, "dropped")?,
            events: field(&value, "events")?
                .as_arr()
                .ok_or_else(|| shape("field `events` must be an array"))?
                .iter()
                .map(parse_event)
                .collect::<Result<Vec<_>, _>>()?,
        })),
        "trace" => Ok(Response::Trace {
            id: u64_field(&value, "id")?,
            trace_id: str_field(&value, "trace_id")?,
            root: parse_span(field(&value, "root")?)?,
        }),
        "shutting-down" => Ok(Response::ShuttingDown {
            pending: u64_field(&value, "pending")?,
        }),
        "error" => {
            let code_text = str_field(&value, "code")?;
            let code = ErrorCode::from_wire(&code_text)
                .ok_or_else(|| shape(format!("unknown error code `{code_text}`")))?;
            Ok(Response::Error {
                code,
                message: str_field(&value, "message")?,
            })
        }
        other => Err(shape(format!("unknown response op `{other}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn demo_summary() -> Summary {
        Summary {
            swaps: 12,
            depth: 140,
            qops: 512,
            initial_layout: vec![3, 1, 2, 0],
            final_layout: vec![0, 1, 2, 3],
            fingerprint: "00ff13de00ff13de".to_string(),
            pipeline: "weights → identity → qlosure".to_string(),
            pass_seconds: vec![
                ("analysis:weights".to_string(), 0.125),
                ("routing:qlosure".to_string(), 0.5),
            ],
            seconds: 0.625,
            queue_seconds: 0.0625,
            seq: 7,
            verified: true,
            success_ppm: Some(912_345),
        }
    }

    fn all_requests() -> Vec<Request> {
        vec![
            Request::Submit {
                backend: "aspen16".to_string(),
                mapper: "qlosure".to_string(),
                qasm: "OPENQASM 2.0;\nqreg q[3];\ncx q[0], q[2];\n".to_string(),
                priority: Priority::Interactive,
                fidelity: true,
                strategy: Strategy::Flat,
                trace: false,
            },
            Request::Submit {
                backend: "line:5".to_string(),
                mapper: "sabre".to_string(),
                qasm: "// tricky \"chars\" \\ in comments\n".to_string(),
                priority: Priority::Batch,
                fidelity: false,
                strategy: Strategy::Hier,
                trace: true,
            },
            Request::Submit {
                backend: "grid:64x64".to_string(),
                mapper: "qlosure".to_string(),
                qasm: String::new(),
                priority: Priority::Batch,
                fidelity: false,
                strategy: Strategy::Auto,
                trace: false,
            },
            Request::Poll { id: 0 },
            Request::Poll {
                id: u64::from(u32::MAX),
            },
            Request::Trace { id: 9 },
            Request::Stats,
            Request::Metrics,
            Request::MetricsHistory,
            Request::Events {
                min_level: obs::Level::Debug,
                after_seq: 0,
            },
            Request::Events {
                min_level: obs::Level::Warn,
                after_seq: 512,
            },
            Request::Shutdown,
        ]
    }

    pub(crate) fn demo_span_tree() -> SpanNode {
        SpanNode {
            name: "job".to_string(),
            start_ns: 0,
            end_ns: 2_000_000,
            notes: vec![("mapper".to_string(), "qlosure".to_string())],
            children: vec![
                SpanNode {
                    name: "intake:queue-wait".to_string(),
                    start_ns: 0,
                    end_ns: 500_000,
                    notes: Vec::new(),
                    children: Vec::new(),
                },
                SpanNode {
                    name: "routing:hier-route".to_string(),
                    start_ns: 500_000,
                    end_ns: 1_900_000,
                    notes: Vec::new(),
                    children: vec![SpanNode {
                        name: "hier:fragment".to_string(),
                        start_ns: 600_000,
                        end_ns: 900_000,
                        notes: vec![("plan_tier".to_string(), "canonical".to_string())],
                        children: Vec::new(),
                    }],
                },
            ],
        }
    }

    pub(crate) fn demo_metrics() -> MetricsBody {
        MetricsBody {
            stats: StatsBody {
                protocol: PROTOCOL_VERSION,
                workers: 4,
                queue_depth: 1,
                submitted: 42,
                completed: 40,
                rejected: 1,
                failed: 1,
                distance_hits: 38,
                distance_misses: 2,
                closure_hits: 12,
                closure_misses: 3,
                weighted_hits: 0,
                weighted_misses: 0,
                subroute_hits: 7,
                subroute_misses: 1,
                plan_exact_hits: 5,
                plan_canonical_hits: 2,
                plan_disk_hits: 3,
                plan_disk_writes: 1,
            },
            queue_p50: 0.0009765625,
            queue_p90: 0.015625,
            queue_p99: 0.25,
            queue_max: 0.5,
            queue_samples: 40,
            passes: vec![
                ("analysis:weights".to_string(), 40, 0.125),
                ("routing:qlosure".to_string(), 40, 2.5),
            ],
            uptime_seconds: 3600.5,
            jobs_inflight: 3,
            events_dropped: 2,
            trace_drops: 5,
        }
    }

    pub(crate) fn demo_history() -> HistoryBody {
        let early = SampleBody::from_metrics(10, &demo_metrics());
        let late = SampleBody {
            index: 11,
            uptime_seconds: 3610.5,
            completed: 60,
            distance_hits: 58,
            queue_depth: 4,
            ..early.clone()
        };
        let samples = vec![early, late];
        let rates = RatesBody::over(&samples);
        HistoryBody {
            sample_seconds: 10.0,
            series: vec![SeriesBody {
                shard: 0,
                samples,
                rates,
            }],
        }
    }

    pub(crate) fn demo_events() -> EventsBody {
        EventsBody {
            dropped: 7,
            events: vec![
                EventBody {
                    seq: 41,
                    age_seconds: 12.5,
                    level: obs::Level::Warn,
                    subsystem: "plan-store".to_string(),
                    message: "truncated tail record".to_string(),
                    fields: vec![("offset".to_string(), "4096".to_string())],
                },
                EventBody {
                    seq: 42,
                    age_seconds: 1.25,
                    level: obs::Level::Info,
                    subsystem: "net".to_string(),
                    message: "idle connection disconnected".to_string(),
                    fields: Vec::new(),
                },
            ],
        }
    }

    fn all_responses() -> Vec<Response> {
        vec![
            Response::Submitted { id: 9 },
            Response::Pending {
                id: 9,
                running: true,
            },
            Response::Pending {
                id: 10,
                running: false,
            },
            Response::Done {
                id: 9,
                summary: demo_summary(),
            },
            Response::Done {
                id: 11,
                summary: Summary {
                    success_ppm: None,
                    pass_seconds: Vec::new(),
                    pipeline: String::new(),
                    ..demo_summary()
                },
            },
            Response::Failed {
                id: 4,
                message: "router exceeded the swap bound".to_string(),
            },
            Response::Stats(StatsBody {
                protocol: PROTOCOL_VERSION,
                workers: 8,
                queue_depth: 3,
                submitted: 100,
                completed: 90,
                rejected: 5,
                failed: 2,
                distance_hits: 1234,
                distance_misses: 7,
                closure_hits: 55,
                closure_misses: 11,
                weighted_hits: 21,
                weighted_misses: 2,
                subroute_hits: 99,
                subroute_misses: 13,
                plan_exact_hits: 64,
                plan_canonical_hits: 35,
                plan_disk_hits: 8,
                plan_disk_writes: 13,
            }),
            Response::Metrics(demo_metrics()),
            Response::Metrics(MetricsBody {
                queue_samples: 0,
                passes: Vec::new(),
                ..demo_metrics()
            }),
            Response::MetricsHistory(demo_history()),
            Response::MetricsHistory(HistoryBody {
                sample_seconds: 10.0,
                series: Vec::new(),
            }),
            Response::Events(demo_events()),
            Response::Events(EventsBody {
                dropped: 0,
                events: Vec::new(),
            }),
            Response::Trace {
                id: 9,
                trace_id: "00ff13de00ff13de".to_string(),
                root: demo_span_tree(),
            },
            Response::Trace {
                id: 10,
                trace_id: "0000000000000001".to_string(),
                root: SpanNode {
                    notes: Vec::new(),
                    children: Vec::new(),
                    ..demo_span_tree()
                },
            },
            Response::ShuttingDown { pending: 2 },
            Response::Error {
                code: ErrorCode::UnknownBackend,
                message: "no backend `eagle`".to_string(),
            },
            Response::Error {
                code: ErrorCode::Busy,
                message: "connection limit reached".to_string(),
            },
            Response::Error {
                code: ErrorCode::ShardUnavailable,
                message: "shard 1 (tcp:10.0.0.2:7911) is unreachable".to_string(),
            },
        ]
    }

    #[test]
    fn every_request_round_trips() {
        for request in all_requests() {
            let line = encode_request(&request).unwrap();
            assert!(!line.contains('\n'), "one frame is one line: {line}");
            assert_eq!(parse_request(&line).unwrap(), request, "{line}");
        }
    }

    #[test]
    fn every_response_round_trips() {
        for response in all_responses() {
            let line = encode_response(&response).unwrap();
            assert!(!line.contains('\n'), "one frame is one line: {line}");
            assert_eq!(parse_response(&line).unwrap(), response, "{line}");
        }
    }

    #[test]
    fn non_finite_summary_is_a_typed_encode_error() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let response = Response::Done {
                id: 7,
                summary: Summary {
                    seconds: bad,
                    ..demo_summary()
                },
            };
            assert!(
                encode_response(&response).is_err(),
                "seconds = {bad:?} must not encode"
            );
        }
    }

    #[test]
    fn version_mismatch_is_typed() {
        let line = encode_request(&Request::Stats).unwrap().replace(
            &format!("\"v\":{PROTOCOL_VERSION}"),
            &format!("\"v\":{}", PROTOCOL_VERSION + 41),
        );
        let err = parse_request(&line).unwrap_err();
        assert_eq!(
            err,
            ProtoError::Version {
                got: PROTOCOL_VERSION + 41
            }
        );
        assert_eq!(err.code(), ErrorCode::VersionMismatch);
    }

    #[test]
    fn oversized_frames_are_rejected_before_parsing() {
        let line = format!(
            "{{\"v\":1,\"op\":\"submit\",\"qasm\":\"{}\"",
            "x".repeat(MAX_FRAME)
        );
        let err = parse_request(&line).unwrap_err();
        assert!(matches!(err, ProtoError::Oversized { len } if len > MAX_FRAME));
        assert_eq!(err.code(), ErrorCode::Oversized);
    }

    #[test]
    fn malformed_frames_are_typed_errors() {
        for (line, want_code) in [
            ("", ErrorCode::BadRequest),
            ("not json", ErrorCode::BadRequest),
            ("42", ErrorCode::BadRequest),
            ("{}", ErrorCode::BadRequest),
            ("{\"op\":\"stats\"}", ErrorCode::BadRequest), // missing v
            ("{\"v\":1}", ErrorCode::BadRequest),          // missing op
            ("{\"v\":1,\"op\":\"frobnicate\"}", ErrorCode::BadRequest),
            ("{\"v\":1,\"op\":\"poll\"}", ErrorCode::BadRequest), // missing id
            ("{\"v\":1,\"op\":\"poll\",\"id\":-1}", ErrorCode::BadRequest),
            (
                "{\"v\":1,\"op\":\"poll\",\"id\":1.5}",
                ErrorCode::BadRequest,
            ),
            ("{\"v\":2,\"op\":\"stats\"}", ErrorCode::VersionMismatch),
            ("{\"v\":\"1\",\"op\":\"stats\"}", ErrorCode::BadRequest),
            // RFC 8259: leading zeros are not JSON numbers.
            ("{\"v\":01,\"op\":\"stats\"}", ErrorCode::BadRequest),
            (
                "{\"v\":1,\"op\":\"poll\",\"id\":0123}",
                ErrorCode::BadRequest,
            ),
            (
                "{\"v\":1,\"op\":\"poll\",\"id\":-007}",
                ErrorCode::BadRequest,
            ),
        ] {
            let err =
                parse_request(line).expect_err(&format!("`{line}` must not parse as a request"));
            assert_eq!(err.code(), want_code, "line: {line}");
            let err =
                parse_response(line).expect_err(&format!("`{line}` must not parse as a response"));
            assert_eq!(err.code(), want_code, "line: {line}");
        }
        // A submit with an unknown priority is a shape error.
        let line = "{\"v\":1,\"op\":\"submit\",\"backend\":\"b\",\"mapper\":\"m\",\
                    \"qasm\":\"\",\"priority\":\"urgent\",\"fidelity\":false}";
        assert_eq!(
            parse_request(line).unwrap_err().code(),
            ErrorCode::BadRequest
        );
    }

    #[test]
    fn truncated_frames_never_panic() {
        for message in all_requests().iter().map(|r| encode_request(r).unwrap()) {
            for cut in 0..message.len() {
                if message.is_char_boundary(cut) {
                    let _ = parse_request(&message[..cut]);
                }
            }
        }
        for message in all_responses().iter().map(|r| encode_response(r).unwrap()) {
            // Responses are long; probe a sample of prefixes.
            for cut in (0..message.len()).step_by(7) {
                if message.is_char_boundary(cut) {
                    let _ = parse_response(&message[..cut]);
                }
            }
        }
    }

    #[test]
    fn error_codes_round_trip_their_spelling() {
        for code in [
            ErrorCode::BadRequest,
            ErrorCode::VersionMismatch,
            ErrorCode::Oversized,
            ErrorCode::UnknownBackend,
            ErrorCode::UnknownMapper,
            ErrorCode::QasmError,
            ErrorCode::DeviceTooSmall,
            ErrorCode::QueueFull,
            ErrorCode::UnknownId,
            ErrorCode::ShuttingDown,
            ErrorCode::MappingFailed,
            ErrorCode::Busy,
            ErrorCode::ShardUnavailable,
        ] {
            assert_eq!(ErrorCode::from_wire(code.as_str()), Some(code));
        }
        assert_eq!(ErrorCode::from_wire("no-such-code"), None);
        assert_eq!(
            Priority::from_wire("interactive"),
            Some(Priority::Interactive)
        );
        assert_eq!(Priority::from_wire("batch"), Some(Priority::Batch));
        assert_eq!(Priority::from_wire("urgent"), None);
        for strategy in [Strategy::Flat, Strategy::Hier, Strategy::Auto] {
            assert_eq!(Strategy::from_wire(strategy.as_str()), Some(strategy));
        }
        assert_eq!(Strategy::from_wire("quantum"), None);
    }

    #[test]
    fn submit_without_strategy_defaults_to_flat() {
        // Pre-strategy clients omit the field entirely: still parses,
        // defaulting to the flat architecture (additive-field rule).
        let line = "{\"v\":1,\"op\":\"submit\",\"backend\":\"aspen16\",\"mapper\":\"qlosure\",\
                    \"qasm\":\"\",\"priority\":\"batch\",\"fidelity\":false}";
        match parse_request(line).unwrap() {
            Request::Submit { strategy, .. } => assert_eq!(strategy, Strategy::Flat),
            other => panic!("unexpected request {other:?}"),
        }
        // An unknown strategy is a typed shape error, not a panic.
        let bad = "{\"v\":1,\"op\":\"submit\",\"backend\":\"b\",\"mapper\":\"m\",\"qasm\":\"\",\
                   \"priority\":\"batch\",\"fidelity\":false,\"strategy\":\"quantum\"}";
        assert_eq!(
            parse_request(bad).unwrap_err().code(),
            ErrorCode::BadRequest
        );
    }

    #[test]
    fn submit_without_trace_defaults_to_off_and_trace_op_round_trips() {
        // Pre-trace clients omit the field entirely: still parses,
        // defaulting to no retention (additive-field rule).
        let line = "{\"v\":1,\"op\":\"submit\",\"backend\":\"aspen16\",\"mapper\":\"qlosure\",\
                    \"qasm\":\"\",\"priority\":\"batch\",\"fidelity\":false}";
        match parse_request(line).unwrap() {
            Request::Submit { trace, .. } => assert!(!trace),
            other => panic!("unexpected request {other:?}"),
        }
        // A non-boolean trace flag is a typed shape error.
        let bad = "{\"v\":1,\"op\":\"submit\",\"backend\":\"b\",\"mapper\":\"m\",\"qasm\":\"\",\
                   \"priority\":\"batch\",\"fidelity\":false,\"trace\":\"yes\"}";
        assert_eq!(
            parse_request(bad).unwrap_err().code(),
            ErrorCode::BadRequest
        );
        // An untraced submit never carries the field on the wire, so old
        // daemons never see it.
        let untraced = encode_request(&all_requests()[0]).unwrap();
        assert!(!untraced.contains("\"trace\""), "{untraced}");
        // Garbage span trees are typed errors, not panics.
        for bad in [
            "{\"v\":1,\"op\":\"trace\",\"id\":1}",
            "{\"v\":1,\"op\":\"trace\",\"id\":1,\"trace_id\":\"x\",\"root\":7}",
            "{\"v\":1,\"op\":\"trace\",\"id\":1,\"trace_id\":\"x\",\
             \"root\":{\"name\":\"j\",\"start_ns\":0,\"end_ns\":1,\"children\":{}}}",
            "{\"v\":1,\"op\":\"trace\",\"id\":1,\"trace_id\":\"x\",\
             \"root\":{\"name\":\"j\",\"start_ns\":0,\"end_ns\":1,\"notes\":{\"k\":1}}}",
        ] {
            assert_eq!(
                parse_response(bad).unwrap_err().code(),
                ErrorCode::BadRequest,
                "{bad}"
            );
        }
    }

    #[test]
    fn span_trees_assemble_render_and_rebase() {
        let spans = vec![
            trace::Span {
                id: trace::ROOT_SPAN,
                parent: 0,
                name: "job".to_string(),
                start_ns: 1_000,
                end_ns: 5_000,
                notes: Vec::new(),
            },
            trace::Span {
                id: 2,
                parent: trace::ROOT_SPAN,
                name: "intake:queue-wait".to_string(),
                start_ns: 1_000,
                end_ns: 2_000,
                notes: Vec::new(),
            },
            trace::Span {
                id: 3,
                parent: 2,
                name: "inner".to_string(),
                start_ns: 1_200,
                end_ns: 1_800,
                notes: vec![("plan_tier".to_string(), "exact".to_string())],
            },
            // An orphan (its parent was dropped by the bounded sink):
            // re-attached to the root instead of vanishing.
            trace::Span {
                id: 9,
                parent: 700,
                name: "orphan".to_string(),
                start_ns: 4_000,
                end_ns: 4_500,
                notes: Vec::new(),
            },
        ];
        let tree = SpanNode::from_spans(&spans).unwrap();
        assert_eq!(tree.name, "job");
        assert_eq!((tree.start_ns, tree.end_ns), (0, 4_000), "rebased to 0");
        assert_eq!(tree.children.len(), 2);
        assert_eq!(tree.children[0].name, "intake:queue-wait");
        assert_eq!(tree.children[0].children[0].name, "inner");
        assert_eq!(tree.children[1].name, "orphan");
        // No root span recorded → no tree.
        assert_eq!(SpanNode::from_spans(&spans[1..]), None);
        let text = tree.render_tree();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("0.004ms job"), "{text}");
        assert!(lines[1].starts_with("  "), "children indent: {text}");
        assert!(text.contains("plan_tier=exact"), "{text}");
        let chrome = demo_span_tree().render_chrome();
        let events = json::parse(&chrome).unwrap();
        let events = events.as_arr().unwrap();
        assert_eq!(events.len(), 4, "one complete event per span");
        for event in events {
            assert_eq!(event.get("ph").and_then(Json::as_str), Some("X"));
            assert!(event.get("ts").and_then(Json::as_f64).is_some());
            assert!(event.get("dur").and_then(Json::as_f64).is_some());
        }
        // Microsecond conversion: the fragment span starts at 600µs.
        assert!(chrome.contains("\"ts\":600"), "{chrome}");
    }

    #[test]
    fn metrics_without_gauge_extension_fields_parses_as_zero() {
        // A metrics frame from a daemon predating the uptime/inflight
        // gauges (additive fields) decodes with zeros.
        let mut old = encode_response(&Response::Metrics(demo_metrics())).unwrap();
        old = old
            .replace(",\"uptime_seconds\":3600.5", "")
            .replace(",\"jobs_inflight\":3", "");
        match parse_response(&old).unwrap() {
            Response::Metrics(m) => {
                assert_eq!(m.uptime_seconds, 0.0);
                assert_eq!(m.jobs_inflight, 0);
                assert_eq!(m.stats.completed, 40, "older fields untouched");
            }
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn metrics_without_drop_counter_fields_parses_as_zero() {
        // A metrics frame from a daemon predating the drop counters
        // (additive fields) decodes with zeros.
        let mut old = encode_response(&Response::Metrics(demo_metrics())).unwrap();
        old = old
            .replace(",\"events_dropped\":2", "")
            .replace(",\"trace_drops\":5", "");
        match parse_response(&old).unwrap() {
            Response::Metrics(m) => {
                assert_eq!(m.events_dropped, 0);
                assert_eq!(m.trace_drops, 0);
                assert_eq!(m.uptime_seconds, 3600.5, "older fields untouched");
            }
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn bare_events_request_defaults_to_everything() {
        // Both request fields are optional: a bare `events` frame asks
        // for the whole retained window at any level.
        match parse_request("{\"v\":1,\"op\":\"events\"}").unwrap() {
            Request::Events {
                min_level,
                after_seq,
            } => {
                assert_eq!(min_level, obs::Level::Debug);
                assert_eq!(after_seq, 0);
            }
            other => panic!("unexpected request {other:?}"),
        }
        // An unknown level is a typed shape error.
        let bad = "{\"v\":1,\"op\":\"events\",\"min_level\":\"fatal\"}";
        assert_eq!(
            parse_request(bad).unwrap_err().code(),
            ErrorCode::BadRequest
        );
        // `metrics-history` is a bare op, like `metrics`.
        assert_eq!(
            parse_request("{\"v\":1,\"op\":\"metrics-history\"}").unwrap(),
            Request::MetricsHistory
        );
    }

    #[test]
    fn history_samples_without_drop_counters_parse_as_zero_and_rates_are_total() {
        // A sample row from a process predating the drop counters still
        // parses (additive-field rule inside the array elements).
        let mut old = encode_response(&Response::MetricsHistory(demo_history())).unwrap();
        old = old
            .replace(",\"events_dropped\":2", "")
            .replace(",\"trace_drops\":5", "");
        match parse_response(&old).unwrap() {
            Response::MetricsHistory(h) => {
                assert_eq!(h.series[0].samples[0].events_dropped, 0);
                assert_eq!(h.series[0].samples[0].trace_drops, 0);
                assert_eq!(h.series[0].samples[0].completed, 40);
            }
            other => panic!("unexpected response {other:?}"),
        }
        // Rate computation is total: degenerate windows yield zeros (the
        // encoder would reject NaN), real windows differentiate.
        assert_eq!(RatesBody::over(&[]).jobs_per_second, 0.0);
        let one = SampleBody::from_metrics(0, &demo_metrics());
        assert_eq!(RatesBody::over(&[one.clone(), one]).jobs_per_second, 0.0);
        let rates = demo_history().series[0].rates.clone();
        assert!((rates.window_seconds - 10.0).abs() < 1e-9);
        assert!((rates.jobs_per_second - 2.0).abs() < 1e-9, "{rates:?}");
        assert!(rates.cache_hit_rate > 0.0 && rates.cache_hit_rate <= 1.0);
        assert!((rates.queue_depth_trend - 3.0).abs() < 1e-9);
    }

    #[test]
    fn metrics_render_is_flat_scrapeable_text() {
        let text = demo_metrics().render();
        for needle in [
            "qlosure_jobs_completed_total 40",
            "qlosure_uptime_seconds 3600.5",
            "qlosure_jobs_inflight 3",
            "qlosure_cache_hits_total{cache=\"distance\"} 38",
            "qlosure_cache_misses_total{cache=\"subroute\"} 1",
            "qlosure_queue_seconds{quantile=\"0.5\"} 0.0009765625",
            "qlosure_queue_seconds{quantile=\"0.99\"} 0.25",
            "qlosure_queue_seconds_max 0.5",
            "qlosure_queue_seconds_count 40",
            "qlosure_pass_runs_total{pass=\"routing:qlosure\"} 40",
            "qlosure_pass_seconds_total{pass=\"analysis:weights\"} 0.125",
            "qlosure_plan_hits_total{tier=\"exact\"} 5",
            "qlosure_plan_hits_total{tier=\"canonical\"} 2",
            "qlosure_plan_hits_total{tier=\"disk\"} 3",
            "qlosure_plan_disk_writes_total 1",
            "qlosure_events_dropped_total 2",
            "qlosure_trace_drops_total 5",
            "# HELP qlosure_jobs_completed_total ",
            "# TYPE qlosure_jobs_completed_total counter",
            "# TYPE qlosure_queue_depth gauge",
            "# TYPE qlosure_queue_seconds summary",
            "# TYPE qlosure_pass_seconds_total counter",
        ] {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
        // Every sample line is `name value` or `name{labels} value` — one
        // space, no JSON punctuation a line-oriented scraper would choke
        // on. `#` lines are scraper comments (HELP/TYPE metadata).
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (name, value) = line.rsplit_once(' ').expect("name value pairs");
            assert!(!name.is_empty() && value.parse::<f64>().is_ok(), "{line}");
        }
        // Pass lines come out sorted by label even if the body was not.
        let shuffled = MetricsBody {
            passes: vec![
                ("routing:qlosure".to_string(), 40, 2.5),
                ("analysis:weights".to_string(), 40, 0.125),
            ],
            ..demo_metrics()
        };
        let text = shuffled.render();
        let weights = text.find("qlosure_pass_runs_total{pass=\"analysis:weights\"}");
        let routing = text.find("qlosure_pass_runs_total{pass=\"routing:qlosure\"}");
        assert!(weights.unwrap() < routing.unwrap(), "{text}");
        // Pass labels with quotes/backslashes are escaped.
        let tricky = MetricsBody {
            passes: vec![("post:\"odd\\label\"".to_string(), 1, 0.5)],
            ..demo_metrics()
        };
        assert!(tricky
            .render()
            .contains("qlosure_pass_runs_total{pass=\"post:\\\"odd\\\\label\\\"\"} 1"));
    }

    #[test]
    fn stats_without_cache_extension_fields_parses_as_zero() {
        // A stats frame from a daemon predating the weighted/subroute
        // counters (additive fields) decodes with zeros.
        let line = "{\"v\":1,\"op\":\"stats\",\"protocol\":1,\"workers\":2,\"queue_depth\":0,\
                    \"submitted\":5,\"completed\":5,\"rejected\":0,\"failed\":0,\
                    \"distance_hits\":9,\"distance_misses\":1,\"closure_hits\":0,\
                    \"closure_misses\":0}";
        match parse_response(line).unwrap() {
            Response::Stats(stats) => {
                assert_eq!(stats.weighted_hits, 0);
                assert_eq!(stats.subroute_misses, 0);
                assert_eq!(stats.plan_exact_hits, 0);
                assert_eq!(stats.plan_canonical_hits, 0);
                assert_eq!(stats.plan_disk_hits, 0);
                assert_eq!(stats.plan_disk_writes, 0);
                assert_eq!(stats.distance_hits, 9);
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
}
