//! `qlosure-cli` — command-line client for `qlosured` (or a
//! `qlosure-router` — same protocol).
//!
//! ```text
//! qlosure-cli [--socket ENDPOINT] submit --backend NAME --mapper NAME
//!             (--qasm FILE | --queko DEPTH [--seed N])
//!             [--priority interactive|batch] [--fidelity]
//!             [--strategy flat|hier|auto] [--trace]
//!             [--wait [--timeout SECS]]
//! qlosure-cli [--socket ENDPOINT] poll ID
//! qlosure-cli [--socket ENDPOINT] trace ID [--format tree|chrome]
//! qlosure-cli [--socket ENDPOINT] stats
//! qlosure-cli [--socket ENDPOINT] metrics
//! qlosure-cli [--socket ENDPOINT] events [--level L] [--follow]
//! qlosure-cli [--socket ENDPOINT] history
//! qlosure-cli [--socket ENDPOINT] top [--interval SECS] [--rounds N]
//! qlosure-cli [--socket ENDPOINT] shutdown
//! ```
//!
//! `ENDPOINT` is `unix:/path`, `tcp:host:port`, or a bare socket path
//! (default `/tmp/qlosured.sock`). Every command but `metrics`,
//! `trace`, `events`, `history` and `top` prints the daemon's response
//! as one JSON line on stdout (the same frame that crossed the wire),
//! so shell pipelines and the CI smoke step can assert on fields like
//! `"verified":true`; `metrics` prints the flat `name value` text a
//! scraper ingests, and `trace` renders the retained span tree —
//! indented human-readable by default, or Chrome trace-event JSON
//! (`--format chrome`, loadable in `chrome://tracing` / Perfetto).
//!
//! The observability trio reads the flight recorder: `events` prints
//! the journal window (`--level warn` filters, `--follow` tails it on a
//! sequence-number cursor), `history` prints one greppable line per
//! shard from the sampler's `metrics-history` window (rates included),
//! and `top` polls `metrics-history` into a live single-screen fleet
//! dashboard (`--rounds N` bounds the refresh loop for scripts; the
//! default runs until interrupted). Exit status: 0 on success, 2 on a
//! typed server error, 1 on transport failure.

use service::proto::{encode_response, Priority, Response, Strategy};
use service::{Client, ClientError, Endpoint};
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: qlosure-cli [--socket ENDPOINT] <command>\n\
         ENDPOINT is unix:/path, tcp:host:port, or a bare socket path\n\
         commands:\n\
         \x20 submit --backend NAME --mapper NAME (--qasm FILE | --queko DEPTH [--seed N])\n\
         \x20        [--priority interactive|batch] [--fidelity] [--strategy flat|hier|auto]\n\
         \x20        [--trace] [--wait [--timeout SECS]]\n\
         \x20 poll ID\n\
         \x20 trace ID [--format tree|chrome]\n\
         \x20 stats\n\
         \x20 metrics\n\
         \x20 events [--level debug|info|warn|error] [--follow]\n\
         \x20 history\n\
         \x20 top [--interval SECS] [--rounds N]\n\
         \x20 shutdown"
    );
    std::process::exit(2);
}

fn fail(e: &ClientError) -> ! {
    eprintln!("qlosure-cli: {e}");
    let status = match e {
        ClientError::Server { .. } | ClientError::Timeout { .. } => 2,
        _ => 1,
    };
    std::process::exit(status);
}

/// Prints a response frame the way it crossed the wire.
fn print_response(response: &Response) {
    // A response parsed off the wire contains only finite numbers (the
    // parser rejects non-finite), so re-encoding cannot fail.
    println!(
        "{}",
        encode_response(response).expect("wire frames re-encode")
    );
}

struct SubmitArgs {
    backend: String,
    mapper: String,
    qasm: Option<String>,
    queko: Option<usize>,
    seed: u64,
    priority: Priority,
    fidelity: bool,
    strategy: Strategy,
    trace: bool,
    wait: bool,
    timeout: u64,
}

fn parse_submit(args: &mut std::env::Args) -> SubmitArgs {
    let mut parsed = SubmitArgs {
        backend: String::new(),
        mapper: String::new(),
        qasm: None,
        queko: None,
        seed: 0,
        priority: Priority::Batch,
        fidelity: false,
        strategy: Strategy::Flat,
        trace: false,
        wait: false,
        timeout: 600,
    };
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("error: {flag} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--backend" => parsed.backend = value("--backend"),
            "--mapper" => parsed.mapper = value("--mapper"),
            "--qasm" => parsed.qasm = Some(value("--qasm")),
            "--queko" => match value("--queko").parse() {
                Ok(depth) if depth >= 1 => parsed.queko = Some(depth),
                _ => usage(),
            },
            "--seed" => match value("--seed").parse() {
                Ok(seed) => parsed.seed = seed,
                Err(_) => usage(),
            },
            "--priority" => match Priority::from_wire(&value("--priority")) {
                Some(p) => parsed.priority = p,
                None => usage(),
            },
            "--fidelity" => parsed.fidelity = true,
            "--strategy" => match Strategy::from_wire(&value("--strategy")) {
                Some(s) => parsed.strategy = s,
                None => usage(),
            },
            "--trace" => parsed.trace = true,
            "--wait" => parsed.wait = true,
            "--timeout" => match value("--timeout").parse() {
                Ok(secs) => parsed.timeout = secs,
                Err(_) => usage(),
            },
            _ => usage(),
        }
    }
    if parsed.backend.is_empty()
        || parsed.mapper.is_empty()
        || parsed.qasm.is_some() == parsed.queko.is_some()
    {
        usage();
    }
    parsed
}

/// The QASM source to submit: a file, or a generated QUEKO instance on
/// the target backend (known-optimal depth, zero-SWAP solution hidden by
/// relabeling — the standard smoke workload).
fn submit_source(args: &SubmitArgs) -> String {
    if let Some(path) = &args.qasm {
        return std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("qlosure-cli: cannot read {path}: {e}");
            std::process::exit(1);
        });
    }
    let depth = args.queko.expect("checked by parse_submit");
    let device = topology::backends::by_name(&args.backend).unwrap_or_else(|| {
        eprintln!("qlosure-cli: no backend named `{}`", args.backend);
        std::process::exit(2);
    });
    let bench = queko::QuekoSpec::new(&device, depth)
        .seed(args.seed)
        .generate();
    qasm::emit(&bench.circuit.to_qasm())
}

fn main() {
    let mut args = std::env::args();
    let _argv0 = args.next();
    let mut socket = "/tmp/qlosured.sock".to_string();
    let command = loop {
        match args.next() {
            Some(flag) if flag == "--socket" => match args.next() {
                Some(path) => socket = path,
                None => usage(),
            },
            Some(command) => break command,
            None => usage(),
        }
    };
    let endpoint = Endpoint::parse(&socket).unwrap_or_else(|e| {
        eprintln!("qlosure-cli: {e}");
        usage()
    });
    let mut client = Client::connect_endpoint(&endpoint).unwrap_or_else(|e| {
        eprintln!("qlosure-cli: cannot connect to {endpoint}: {e}");
        std::process::exit(1);
    });
    match command.as_str() {
        "submit" => {
            let submit = parse_submit(&mut args);
            let qasm = submit_source(&submit);
            let id = client
                .submit_traced(
                    &submit.backend,
                    &submit.mapper,
                    &qasm,
                    submit.priority,
                    submit.fidelity,
                    submit.strategy,
                    submit.trace,
                )
                .unwrap_or_else(|e| fail(&e));
            print_response(&Response::Submitted { id });
            if submit.wait {
                let summary = client
                    .wait(id, Duration::from_secs(submit.timeout))
                    .unwrap_or_else(|e| fail(&e));
                print_response(&Response::Done { id, summary });
            }
        }
        "poll" => {
            let id = args
                .next()
                .and_then(|raw| raw.parse().ok())
                .unwrap_or_else(|| usage());
            let response = client.poll(id).unwrap_or_else(|e| fail(&e));
            print_response(&response);
        }
        "trace" => {
            let id = args
                .next()
                .and_then(|raw| raw.parse().ok())
                .unwrap_or_else(|| usage());
            let mut chrome = false;
            while let Some(flag) = args.next() {
                match (flag.as_str(), args.next().as_deref()) {
                    ("--format", Some("tree")) => chrome = false,
                    ("--format", Some("chrome")) => chrome = true,
                    _ => usage(),
                }
            }
            let (trace_id, root) = client.trace(id).unwrap_or_else(|e| fail(&e));
            if chrome {
                // One JSON array of Chrome trace events — pipe to a file
                // and load it in chrome://tracing or Perfetto.
                println!("{}", root.render_chrome());
            } else {
                println!("trace {trace_id} job {id}");
                print!("{}", root.render_tree());
            }
        }
        "stats" => {
            let stats = client.stats().unwrap_or_else(|e| fail(&e));
            print_response(&Response::Stats(stats));
        }
        "metrics" => {
            let metrics = client.metrics().unwrap_or_else(|e| fail(&e));
            // Flat scraper text, not a JSON frame — this is the one
            // subcommand meant for machines that do not speak NDJSON.
            print!("{}", metrics.render());
        }
        "events" => {
            let mut min_level = obs::Level::Debug;
            let mut follow = false;
            while let Some(flag) = args.next() {
                match flag.as_str() {
                    "--level" => match args.next().as_deref().and_then(obs::Level::parse) {
                        Some(level) => min_level = level,
                        None => usage(),
                    },
                    "--follow" => follow = true,
                    _ => usage(),
                }
            }
            // A seq cursor tails without duplicates: each round asks only
            // for events strictly past the highest seq already printed.
            let mut cursor = 0u64;
            let mut first = true;
            loop {
                let body = client
                    .events(min_level, cursor)
                    .unwrap_or_else(|e| fail(&e));
                if first && body.dropped > 0 {
                    eprintln!(
                        "qlosure-cli: {} earlier events already evicted from the bounded journal",
                        body.dropped
                    );
                }
                first = false;
                for event in &body.events {
                    print_event(event);
                    cursor = cursor.max(event.seq);
                }
                if !follow {
                    break;
                }
                std::thread::sleep(Duration::from_secs(1));
            }
        }
        "history" => {
            let history = client.metrics_history().unwrap_or_else(|e| fail(&e));
            // One greppable `key value` line per shard; rates come from
            // the daemon, not recomputed here.
            println!("sample_seconds {}", history.sample_seconds);
            for series in &history.series {
                let (first, last) = match (series.samples.first(), series.samples.last()) {
                    (Some(first), Some(last)) => (first.index, last.index),
                    _ => (0, 0),
                };
                println!(
                    "shard {} samples {} index_first {} index_last {} window_seconds {:.3} \
                     jobs_per_second {:.3} cache_hit_rate {:.3} queue_depth_trend {}",
                    series.shard,
                    series.samples.len(),
                    first,
                    last,
                    series.rates.window_seconds,
                    series.rates.jobs_per_second,
                    series.rates.cache_hit_rate,
                    series.rates.queue_depth_trend,
                );
            }
        }
        "top" => {
            let mut interval = 2u64;
            let mut rounds = 0u64; // 0 = until interrupted
            while let Some(flag) = args.next() {
                match flag.as_str() {
                    "--interval" => match args.next().and_then(|raw| raw.parse().ok()) {
                        Some(secs) if secs >= 1 => interval = secs,
                        _ => usage(),
                    },
                    "--rounds" => match args.next().and_then(|raw| raw.parse().ok()) {
                        Some(n) => rounds = n,
                        None => usage(),
                    },
                    _ => usage(),
                }
            }
            let mut cursor = 0u64;
            let mut round = 0u64;
            loop {
                let history = client.metrics_history().unwrap_or_else(|e| fail(&e));
                let events = client
                    .events(obs::Level::Warn, cursor)
                    .unwrap_or_else(|e| fail(&e));
                for event in &events.events {
                    cursor = cursor.max(event.seq);
                }
                render_top(&history, &events.events);
                round += 1;
                if rounds != 0 && round >= rounds {
                    break;
                }
                std::thread::sleep(Duration::from_secs(interval));
            }
        }
        "shutdown" => {
            let pending = client.shutdown().unwrap_or_else(|e| fail(&e));
            print_response(&Response::ShuttingDown { pending });
        }
        _ => usage(),
    }
}

/// One journal event as a text line: age, level, subsystem, message,
/// then the key/value payload.
fn print_event(event: &service::EventBody) {
    let fields: String = event
        .fields
        .iter()
        .map(|(k, v)| format!(" {k}={v}"))
        .collect();
    println!(
        "-{:>9.3}s  {:<5}  {:<10}  {}{}",
        event.age_seconds, event.level, event.subsystem, event.message, fields
    );
}

/// One `top` frame: clear the screen, then a fleet header, one row per
/// shard, and the freshest warnings underneath.
fn render_top(history: &service::HistoryBody, warnings: &[service::EventBody]) {
    // ANSI clear + home — single-screen refresh, no TUI dependency.
    print!("\x1b[2J\x1b[H");
    let uptime = history
        .series
        .iter()
        .filter_map(|s| s.samples.last())
        .map(|s| s.uptime_seconds)
        .fold(0.0f64, f64::max);
    println!(
        "qlosure top — {} shard(s), sampling every {:.0}s, fleet uptime {:.0}s",
        history.series.len(),
        history.sample_seconds,
        uptime
    );
    println!(
        "{:>5} {:>8} {:>7} {:>7} {:>9} {:>10} {:>7} {:>7}",
        "shard", "jobs/s", "hit%", "queue", "inflight", "completed", "failed", "trend"
    );
    for series in &history.series {
        let last = series.samples.last();
        println!(
            "{:>5} {:>8.2} {:>7.1} {:>7} {:>9} {:>10} {:>7} {:>+7}",
            series.shard,
            series.rates.jobs_per_second,
            series.rates.cache_hit_rate * 100.0,
            last.map_or(0, |s| s.queue_depth),
            last.map_or(0, |s| s.jobs_inflight),
            last.map_or(0, |s| s.completed),
            last.map_or(0, |s| s.failed),
            series.rates.queue_depth_trend,
        );
    }
    if !warnings.is_empty() {
        println!("recent warnings:");
        for event in warnings.iter().rev().take(8) {
            print_event(event);
        }
    }
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
}
