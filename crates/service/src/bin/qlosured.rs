//! `qlosured` — the persistent mapping daemon.
//!
//! ```text
//! qlosured [--listen ENDPOINT | --socket PATH] [--workers N]
//!          [--queue-cap N] [--results-cap N]
//!          [--max-conns N] [--read-timeout SECS]
//!          [--plan-store DIR] [--trace-slow SECS]
//!          [--obs-sample SECS] [--stall-after SECS]
//! ```
//!
//! Listens on a Unix domain socket (default `/tmp/qlosured.sock`) or a
//! TCP address (`--listen tcp:host:port`), serves the NDJSON mapping
//! protocol until a client sends `shutdown`, drains every admitted job,
//! and prints the final counters. Worker count defaults to the
//! `ENGINE_THREADS` environment variable (all cores when unset), like
//! every engine consumer. `--plan-store DIR` persists hierarchical SWAP
//! plans (keyed on canonical fragment content) under `DIR`, so a
//! restarted daemon replays plans an earlier process computed.
//! `--trace-slow SECS` sets the slow-job threshold: any job whose
//! mapping wall-clock exceeds it keeps its span tree for the `trace`
//! request even when the submit did not ask for tracing.
//! `--obs-sample SECS` sets the metrics sampler interval behind the
//! `metrics-history` request (default 10, `0` disables), and
//! `--stall-after SECS` the watchdog patience before an in-flight job is
//! flagged with a `warn` journal event and a flight record (default 60).

use service::daemon;
use service::{DaemonConfig, Endpoint};
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: qlosured [--listen ENDPOINT | --socket PATH] [--workers N]\n\
         \x20               [--queue-cap N] [--results-cap N]\n\
         \x20               [--max-conns N] [--read-timeout SECS]\n\
         \x20               [--plan-store DIR] [--trace-slow SECS]\n\
         \x20               [--obs-sample SECS] [--stall-after SECS]\n\
         ENDPOINT is unix:/path, tcp:host:port, or a bare socket path"
    );
    std::process::exit(2);
}

fn endpoint(raw: &str) -> Endpoint {
    Endpoint::parse(raw).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        usage()
    })
}

fn parse_args() -> DaemonConfig {
    let mut config = DaemonConfig::at("/tmp/qlosured.sock");
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("error: {flag} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            // `--socket` is the historical spelling; `--listen` accepts
            // either transport. Both set the same endpoint.
            "--socket" => config.endpoint = endpoint(&value("--socket")),
            "--listen" => config.endpoint = endpoint(&value("--listen")),
            "--workers" => match value("--workers").parse() {
                Ok(n) if n >= 1 => config.service.workers = n,
                _ => usage(),
            },
            "--queue-cap" => match value("--queue-cap").parse() {
                Ok(n) => config.service.queue_capacity = n,
                Err(_) => usage(),
            },
            "--results-cap" => match value("--results-cap").parse() {
                Ok(n) if n >= 1 => config.service.results_capacity = n,
                _ => usage(),
            },
            "--max-conns" => match value("--max-conns").parse() {
                Ok(n) if n >= 1 => config.max_connections = n,
                _ => usage(),
            },
            "--read-timeout" => match value("--read-timeout").parse() {
                Ok(secs) if secs >= 1 => config.read_timeout = Duration::from_secs(secs),
                _ => usage(),
            },
            "--plan-store" => config.plan_store = Some(value("--plan-store").into()),
            "--trace-slow" => match value("--trace-slow").parse::<f64>() {
                Ok(secs) if secs >= 0.0 && secs.is_finite() => {
                    config.service.trace_slow_seconds = secs;
                }
                _ => usage(),
            },
            "--obs-sample" => match value("--obs-sample").parse::<f64>() {
                Ok(secs) if secs >= 0.0 && secs.is_finite() => {
                    config.service.obs_sample_seconds = secs;
                }
                _ => usage(),
            },
            "--stall-after" => match value("--stall-after").parse::<f64>() {
                Ok(secs) if secs >= 0.0 && secs.is_finite() => {
                    config.service.stall_after_seconds = secs;
                }
                _ => usage(),
            },
            _ => usage(),
        }
    }
    config
}

fn main() {
    let config = parse_args();
    eprintln!(
        "qlosured: listening on {} ({} workers, queue {}, results {}, \
         {} conns max, {}s idle limit)",
        config.endpoint,
        config.service.workers,
        config.service.queue_capacity,
        config.service.results_capacity,
        config.max_connections,
        config.read_timeout.as_secs(),
    );
    match daemon::run(config) {
        Ok(stats) => {
            eprintln!(
                "qlosured: drained and exiting — {} submitted, {} completed, {} failed, \
                 {} rejected; distance cache {}h/{}m, closure memo {}h/{}m",
                stats.submitted,
                stats.completed,
                stats.failed,
                stats.rejected,
                stats.distance_hits,
                stats.distance_misses,
                stats.closure_hits,
                stats.closure_misses,
            );
        }
        Err(e) => {
            eprintln!("qlosured: fatal: {e}");
            std::process::exit(1);
        }
    }
}
