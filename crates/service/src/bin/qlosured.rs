//! `qlosured` — the persistent mapping daemon.
//!
//! ```text
//! qlosured [--socket PATH] [--workers N] [--queue-cap N] [--results-cap N]
//! ```
//!
//! Listens on a Unix domain socket (default `/tmp/qlosured.sock`),
//! serves the NDJSON mapping protocol until a client sends `shutdown`,
//! drains every admitted job, and prints the final counters. Worker
//! count defaults to the `ENGINE_THREADS` environment variable (all
//! cores when unset), like every engine consumer.

use service::daemon;
use service::{DaemonConfig, ServiceConfig};

fn usage() -> ! {
    eprintln!("usage: qlosured [--socket PATH] [--workers N] [--queue-cap N] [--results-cap N]");
    std::process::exit(2);
}

fn parse_args() -> DaemonConfig {
    let mut config = DaemonConfig {
        socket: "/tmp/qlosured.sock".into(),
        service: ServiceConfig::default(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("error: {flag} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--socket" => config.socket = value("--socket").into(),
            "--workers" => match value("--workers").parse() {
                Ok(n) if n >= 1 => config.service.workers = n,
                _ => usage(),
            },
            "--queue-cap" => match value("--queue-cap").parse() {
                Ok(n) => config.service.queue_capacity = n,
                Err(_) => usage(),
            },
            "--results-cap" => match value("--results-cap").parse() {
                Ok(n) if n >= 1 => config.service.results_capacity = n,
                _ => usage(),
            },
            _ => usage(),
        }
    }
    config
}

fn main() {
    let config = parse_args();
    eprintln!(
        "qlosured: listening on {} ({} workers, queue {}, results {})",
        config.socket.display(),
        config.service.workers,
        config.service.queue_capacity,
        config.service.results_capacity,
    );
    match daemon::run(config) {
        Ok(stats) => {
            eprintln!(
                "qlosured: drained and exiting — {} submitted, {} completed, {} failed, \
                 {} rejected; distance cache {}h/{}m, closure memo {}h/{}m",
                stats.submitted,
                stats.completed,
                stats.failed,
                stats.rejected,
                stats.distance_hits,
                stats.distance_misses,
                stats.closure_hits,
                stats.closure_misses,
            );
        }
        Err(e) => {
            eprintln!("qlosured: fatal: {e}");
            std::process::exit(1);
        }
    }
}
