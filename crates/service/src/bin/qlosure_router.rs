//! `qlosure-router` — a balancer fronting N `qlosured` shards.
//!
//! ```text
//! qlosure-router --listen ENDPOINT --shard ENDPOINT [--shard ENDPOINT ...]
//!                [--max-conns N] [--read-timeout SECS]
//! ```
//!
//! Speaks the same NDJSON protocol as `qlosured` — clients (and
//! `qlosure-cli`) cannot tell the difference. Each submit is routed by
//! the FNV content-key of its backend name, so a given device always
//! lands on the same shard and that shard's distance/closure/subroute
//! caches stay hot for it. `stats`/`metrics` aggregate over the fleet;
//! `shutdown` drains every shard, then the router itself.

use service::router::{self, RouterConfig};
use service::Endpoint;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: qlosure-router --listen ENDPOINT --shard ENDPOINT [--shard ENDPOINT ...]\n\
         \x20                     [--max-conns N] [--read-timeout SECS]\n\
         ENDPOINT is unix:/path, tcp:host:port, or a bare socket path"
    );
    std::process::exit(2);
}

fn endpoint(raw: &str) -> Endpoint {
    Endpoint::parse(raw).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        usage()
    })
}

fn parse_args() -> RouterConfig {
    let mut listen = None;
    let mut config = RouterConfig::fronting(Endpoint::Tcp("127.0.0.1:7911".to_string()), vec![]);
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("error: {flag} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--listen" => listen = Some(endpoint(&value("--listen"))),
            "--shard" => config.shards.push(endpoint(&value("--shard"))),
            "--max-conns" => match value("--max-conns").parse() {
                Ok(n) if n >= 1 => config.max_connections = n,
                _ => usage(),
            },
            "--read-timeout" => match value("--read-timeout").parse() {
                Ok(secs) if secs >= 1 => config.read_timeout = Duration::from_secs(secs),
                _ => usage(),
            },
            _ => usage(),
        }
    }
    let Some(listen) = listen else {
        eprintln!("error: --listen is required");
        usage()
    };
    if config.shards.is_empty() {
        eprintln!("error: at least one --shard is required");
        usage()
    }
    config.listen = listen;
    config
}

fn main() {
    let config = parse_args();
    eprintln!(
        "qlosure-router: listening on {} fronting {} shard(s)",
        config.listen,
        config.shards.len(),
    );
    if let Err(e) = router::run(config) {
        eprintln!("qlosure-router: fatal: {e}");
        std::process::exit(1);
    }
}
