//! # qlosure-service — the persistent mapping daemon
//!
//! Every other consumer in the workspace is a one-shot process that pays
//! full device-cache warmup per invocation. This crate keeps the mapping
//! stack resident: `qlosured` listens on a Unix domain socket, speaks a
//! versioned newline-delimited JSON protocol ([`proto`]), and drives
//! requests through an asynchronous intake layer ([`intake`]) — a bounded
//! admission queue with interactive-over-batch priority, a scheduler
//! thread draining into the engine's persistent
//! [`StreamEngine`](engine::StreamEngine) workers, and a bounded FIFO
//! result store polled by request ID. Because the process lives on, the
//! shared per-device caches (`CouplingGraph::shared_distances`, the
//! Presburger closure memo) amortize across requests, and the daemon's
//! `stats` response reports their hit/miss counters so that amortization
//! is observable.
//!
//! The pieces:
//!
//! * [`proto`] — wire types, hand-rolled encode/parse, typed errors,
//!   [`proto::PROTOCOL_VERSION`];
//! * [`intake`] — [`MappingService`]: admission, scheduling, results,
//!   graceful drain-then-exit shutdown;
//! * [`registry`] — request decoding (backend/mapper/QASM → job spec);
//! * [`net`] — the transport layer: [`Endpoint`] (`unix:/path` or
//!   `tcp:host:port`), stream/listener wrappers, and the hardened
//!   connection plumbing (bounded resumable frame reads, connection cap,
//!   idle deadlines, join-on-shutdown);
//! * [`daemon`] — the socket server (`qlosured` is a thin `main` over
//!   [`daemon::run`]), serving either transport;
//! * [`router`] — `qlosure-router`: a balancer fronting N `qlosured`
//!   shards, routing each submit by the FNV content-key of its backend
//!   so every shard's device caches stay hot for *its* devices;
//! * [`client`] — a blocking client ([`Client`]), used by `qlosure-cli`,
//!   the `service_throughput`/`service_fleet` benches and the
//!   integration tests.
//!
//! # In-process quickstart
//!
//! ```
//! use service::{Client, DaemonConfig, Priority};
//! use std::time::Duration;
//!
//! let socket = std::env::temp_dir().join(format!("qlosured-doc-{}.sock", std::process::id()));
//! let daemon = service::daemon::spawn(DaemonConfig::at(&socket)).unwrap();
//! let mut client = Client::connect(&socket).unwrap();
//!
//! let qasm = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[3];\ncx q[0], q[2];\n";
//! let id = client
//!     .submit("line:3", "qlosure", qasm, Priority::Interactive, false)
//!     .unwrap();
//! let summary = client.wait(id, Duration::from_secs(30)).unwrap();
//! assert!(summary.verified && summary.swaps >= 1);
//!
//! client.shutdown().unwrap();
//! daemon.join().unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod daemon;
pub mod intake;
pub mod json;
pub mod net;
pub mod proto;
pub mod registry;
pub mod router;

pub use client::{Client, ClientError};
pub use daemon::{DaemonConfig, DaemonHandle};
pub use intake::{
    result_fingerprint, JobOutcome, JobSpec, MappingService, PollReply, ServiceConfig,
};
pub use net::{Endpoint, Stream};
pub use proto::{
    ErrorCode, EventBody, EventsBody, HistoryBody, MetricsBody, Priority, ProtoError, RatesBody,
    Request, Response, SampleBody, SeriesBody, SpanNode, StatsBody, Strategy, Summary, MAX_FRAME,
    PROTOCOL_VERSION,
};
pub use router::{content_shard, RouterConfig, RouterHandle};
