//! Decoding submit requests into schedulable jobs: name→mapper and
//! name→device resolution plus QASM conversion, with every failure mapped
//! to a typed [`ErrorCode`].

use crate::intake::JobSpec;
use crate::proto::{ErrorCode, Priority, Strategy};
use circuit::Circuit;
use hier::HierMapper;
use qlosure::{Mapper, QlosureMapper};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};
use topology::{backends, CouplingGraph, NoiseModel};

/// Seed of the deterministic synthetic calibration used for opt-in
/// fidelity estimation: every request against the same device sees the
/// same noise model, so `success_ppm` is reproducible.
pub const NOISE_SEED: u64 = 0x00CA_11B8;

/// Median two-qubit error rate of the synthetic calibration (the same
/// Eagle-like figure the `noise_aware` example uses).
pub const NOISE_MEDIAN_2Q: f64 = 7e-3;

/// Resolves a mapper by its roster name.
pub fn mapper_by_name(name: &str) -> Option<Arc<dyn Mapper + Send + Sync>> {
    use baselines::{CirqMapper, QmapMapper, SabreMapper, TketMapper};
    match name {
        "qlosure" => Some(Arc::new(QlosureMapper::default())),
        "sabre" => Some(Arc::new(SabreMapper::default())),
        "qmap" => Some(Arc::new(QmapMapper::default())),
        "cirq" => Some(Arc::new(CirqMapper::default())),
        "tket" => Some(Arc::new(TketMapper::default())),
        _ => None,
    }
}

/// Mapper names accepted by [`mapper_by_name`] (for error messages).
pub const MAPPER_NAMES: [&str; 5] = ["sabre", "qmap", "cirq", "tket", "qlosure"];

/// Resolves a device by name through a process-wide memo, so every
/// request against the same backend shares one adjacency/neighbor
/// allocation (the distance matrix is shared separately through
/// `CouplingGraph::shared_distances`).
pub fn shared_device(name: &str) -> Option<Arc<CouplingGraph>> {
    static MEMO: OnceLock<Mutex<HashMap<String, Arc<CouplingGraph>>>> = OnceLock::new();
    let memo = MEMO.get_or_init(Default::default);
    if let Some(hit) = memo.lock().expect("device memo poisoned").get(name) {
        return Some(hit.clone());
    }
    // Build outside the lock; concurrent duplicate builds are cheap and
    // the entry API keeps the first insertion.
    let built = Arc::new(backends::by_name(name)?);
    Some(
        memo.lock()
            .expect("device memo poisoned")
            .entry(name.to_string())
            .or_insert(built)
            .clone(),
    )
}

/// Decodes a submit request into a [`JobSpec`].
///
/// The `strategy` picks the mapping architecture: `Flat` runs the named
/// mapper as-is, `Hier` swaps in the hierarchical partitioned mapper
/// (the mapper name must still resolve — it documents the flat
/// baseline the request would otherwise run), and `Auto` picks `Hier`
/// only when the device is at or above [`hier::AUTO_THRESHOLD`] qubits.
///
/// # Errors
///
/// Typed `(code, message)` pairs: [`ErrorCode::UnknownBackend`],
/// [`ErrorCode::UnknownMapper`], [`ErrorCode::QasmError`] (parse or
/// conversion), or [`ErrorCode::DeviceTooSmall`] — all detected here at
/// admission so a worker never panics on malformed input.
pub fn decode_submit(
    backend: &str,
    mapper: &str,
    qasm_src: &str,
    priority: Priority,
    fidelity: bool,
    strategy: Strategy,
) -> Result<JobSpec, (ErrorCode, String)> {
    let device = shared_device(backend).ok_or_else(|| {
        (
            ErrorCode::UnknownBackend,
            format!("no backend named `{backend}`"),
        )
    })?;
    let mapper = mapper_by_name(mapper).ok_or_else(|| {
        (
            ErrorCode::UnknownMapper,
            format!(
                "no mapper named `{mapper}` (expected one of {})",
                MAPPER_NAMES.join(", ")
            ),
        )
    })?;
    let mapper: Arc<dyn Mapper + Send + Sync> = match strategy {
        Strategy::Flat => mapper,
        Strategy::Hier => Arc::new(HierMapper::default()),
        Strategy::Auto => {
            if hier::auto_prefers_hier(device.n_qubits()) {
                Arc::new(HierMapper::default())
            } else {
                mapper
            }
        }
    };
    let program = qasm::parse(qasm_src)
        .map_err(|e| (ErrorCode::QasmError, format!("QASM parse error: {e}")))?;
    let circuit = Circuit::from_qasm(&program)
        .map_err(|e| (ErrorCode::QasmError, format!("QASM conversion error: {e}")))?;
    if circuit.n_qubits() > device.n_qubits() {
        return Err((
            ErrorCode::DeviceTooSmall,
            format!(
                "circuit needs {} qubits but `{}` has {}",
                circuit.n_qubits(),
                device.name(),
                device.n_qubits()
            ),
        ));
    }
    let noise = fidelity.then(|| NoiseModel::synthetic(&device, NOISE_MEDIAN_2Q, NOISE_SEED));
    Ok(JobSpec {
        circuit: Arc::new(circuit),
        device,
        mapper,
        priority,
        noise,
        // Trace retention is a wire-level opt-in the dispatcher stamps on
        // after decoding; it never affects admission validation.
        trace: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const GHZ: &str = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[3];\n\
                       h q[0];\ncx q[0], q[1];\ncx q[0], q[2];\n";

    #[test]
    fn decode_accepts_a_valid_submission() {
        let spec = decode_submit(
            "aspen16",
            "qlosure",
            GHZ,
            Priority::Batch,
            true,
            Strategy::Flat,
        )
        .unwrap();
        assert_eq!(spec.circuit.n_qubits(), 3);
        assert_eq!(spec.device.n_qubits(), 16);
        assert_eq!(spec.mapper.name(), "qlosure");
        assert!(spec.noise.is_some());
        let without = decode_submit(
            "aspen16",
            "sabre",
            GHZ,
            Priority::Interactive,
            false,
            Strategy::Flat,
        )
        .unwrap();
        assert!(without.noise.is_none());
    }

    #[test]
    fn strategy_selects_the_mapping_architecture() {
        let decode = |backend: &str, strategy| {
            decode_submit(backend, "qlosure", GHZ, Priority::Batch, false, strategy)
                .unwrap()
                .mapper
                .name()
                .to_string()
        };
        assert_eq!(decode("aspen16", Strategy::Flat), "qlosure");
        assert_eq!(decode("aspen16", Strategy::Hier), "hier");
        // Auto: flat below the threshold, hier at/above it.
        assert_eq!(decode("aspen16", Strategy::Auto), "qlosure");
        assert_eq!(decode("grid:32x32", Strategy::Auto), "hier");
        // Hier still demands a resolvable flat mapper name.
        assert_eq!(
            decode_submit(
                "aspen16",
                "magic",
                GHZ,
                Priority::Batch,
                false,
                Strategy::Hier
            )
            .unwrap_err()
            .0,
            ErrorCode::UnknownMapper
        );
    }

    #[test]
    fn decode_failures_are_typed() {
        let code = |r: Result<JobSpec, (ErrorCode, String)>| r.unwrap_err().0;
        assert_eq!(
            code(decode_submit(
                "eagle",
                "qlosure",
                GHZ,
                Priority::Batch,
                false,
                Strategy::Flat
            )),
            ErrorCode::UnknownBackend
        );
        assert_eq!(
            code(decode_submit(
                "aspen16",
                "magic",
                GHZ,
                Priority::Batch,
                false,
                Strategy::Flat
            )),
            ErrorCode::UnknownMapper
        );
        assert_eq!(
            code(decode_submit(
                "aspen16",
                "qlosure",
                "qreg q[",
                Priority::Batch,
                false,
                Strategy::Flat
            )),
            ErrorCode::QasmError
        );
        let big = "OPENQASM 2.0;\nqreg q[40];\ncx q[0], q[39];\n";
        assert_eq!(
            code(decode_submit(
                "aspen16",
                "qlosure",
                big,
                Priority::Batch,
                false,
                Strategy::Flat
            )),
            ErrorCode::DeviceTooSmall
        );
    }

    #[test]
    fn every_roster_mapper_resolves() {
        for name in MAPPER_NAMES {
            let mapper = mapper_by_name(name).unwrap_or_else(|| panic!("{name} must resolve"));
            assert_eq!(mapper.name(), name);
        }
        assert!(mapper_by_name("").is_none());
    }

    #[test]
    fn shared_device_memoizes_per_name() {
        let a = shared_device("king9").unwrap();
        let b = shared_device("king9").unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert!(shared_device("not-a-device").is_none());
    }
}
