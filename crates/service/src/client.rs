//! A blocking client for the daemon's NDJSON protocol, shared by the
//! `qlosure-cli` binary, the throughput bench and the integration tests.

use crate::proto::{
    encode_request, parse_response, ErrorCode, Priority, ProtoError, Request, Response, StatsBody,
    Strategy, Summary, MAX_FRAME,
};
use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::{Duration, Instant};

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(std::io::Error),
    /// The daemon sent a frame this client cannot decode (likely a
    /// protocol-version skew).
    Proto(ProtoError),
    /// The daemon answered with a typed error.
    Server {
        /// Machine-readable category.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// The daemon answered something structurally valid but unexpected
    /// for the request that was sent.
    Unexpected(Box<Response>),
    /// The daemon closed the connection.
    Closed,
    /// [`Client::wait`] ran out of time.
    Timeout {
        /// The job that was being waited on.
        id: u64,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "I/O error: {e}"),
            ClientError::Proto(e) => write!(f, "protocol error: {e}"),
            ClientError::Server { code, message } => write!(f, "server error [{code}]: {message}"),
            ClientError::Unexpected(r) => write!(f, "unexpected response: {r:?}"),
            ClientError::Closed => write!(f, "daemon closed the connection"),
            ClientError::Timeout { id } => write!(f, "timed out waiting for job {id}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Proto(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A persistent connection to a `qlosured` daemon.
pub struct Client {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
}

impl Client {
    /// Connects to the daemon at `socket`.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(socket: impl AsRef<Path>) -> std::io::Result<Client> {
        let stream = UnixStream::connect(socket)?;
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    /// Sends one request frame and reads one response frame. Typed
    /// daemon errors come back as `Ok(Response::Error { .. })`; the
    /// convenience wrappers below convert them to [`ClientError::Server`].
    ///
    /// # Errors
    ///
    /// Transport and decode failures.
    pub fn request(&mut self, request: &Request) -> Result<Response, ClientError> {
        let frame = encode_request(request).map_err(std::io::Error::other)?;
        self.writer.write_all(format!("{frame}\n").as_bytes())?;
        self.writer.flush()?;
        let mut buf = Vec::new();
        let n = (&mut self.reader)
            .take((MAX_FRAME + 2) as u64)
            .read_until(b'\n', &mut buf)?;
        if n == 0 {
            return Err(ClientError::Closed);
        }
        while matches!(buf.last(), Some(b'\n' | b'\r')) {
            buf.pop();
        }
        let line = String::from_utf8(buf)
            .map_err(|_| ClientError::Proto(ProtoError::Shape("non-UTF-8 frame".to_string())))?;
        parse_response(&line).map_err(ClientError::Proto)
    }

    fn expect(&mut self, request: &Request) -> Result<Response, ClientError> {
        match self.request(request)? {
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            response => Ok(response),
        }
    }

    /// Submits a job with the flat mapping strategy and returns its
    /// request ID.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] for typed rejections (unknown backend,
    /// full queue, …) plus transport failures.
    pub fn submit(
        &mut self,
        backend: &str,
        mapper: &str,
        qasm: &str,
        priority: Priority,
        fidelity: bool,
    ) -> Result<u64, ClientError> {
        self.submit_with_strategy(backend, mapper, qasm, priority, fidelity, Strategy::Flat)
    }

    /// Submits a job under an explicit mapping [`Strategy`]
    /// (`flat`/`hier`/`auto`) and returns its request ID.
    ///
    /// # Errors
    ///
    /// Same as [`Client::submit`].
    pub fn submit_with_strategy(
        &mut self,
        backend: &str,
        mapper: &str,
        qasm: &str,
        priority: Priority,
        fidelity: bool,
        strategy: Strategy,
    ) -> Result<u64, ClientError> {
        let request = Request::Submit {
            backend: backend.to_string(),
            mapper: mapper.to_string(),
            qasm: qasm.to_string(),
            priority,
            fidelity,
            strategy,
        };
        match self.expect(&request)? {
            Response::Submitted { id } => Ok(id),
            other => Err(ClientError::Unexpected(Box::new(other))),
        }
    }

    /// One poll round trip (pending/done/failed/error, undigested).
    ///
    /// # Errors
    ///
    /// Transport and decode failures.
    pub fn poll(&mut self, id: u64) -> Result<Response, ClientError> {
        self.request(&Request::Poll { id })
    }

    /// Polls until job `id` completes, sleeping 10 ms between rounds.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] with [`ErrorCode::MappingFailed`] when the
    /// job failed, [`ClientError::Timeout`] past the deadline, plus
    /// transport failures.
    pub fn wait(&mut self, id: u64, timeout: Duration) -> Result<Summary, ClientError> {
        let deadline = Instant::now() + timeout;
        loop {
            match self.expect(&Request::Poll { id })? {
                Response::Done { summary, .. } => return Ok(summary),
                Response::Failed { message, .. } => {
                    return Err(ClientError::Server {
                        code: ErrorCode::MappingFailed,
                        message,
                    })
                }
                Response::Pending { .. } => {
                    if Instant::now() >= deadline {
                        return Err(ClientError::Timeout { id });
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
                other => return Err(ClientError::Unexpected(Box::new(other))),
            }
        }
    }

    /// Fetches the daemon counters.
    ///
    /// # Errors
    ///
    /// Transport, decode and server failures.
    pub fn stats(&mut self) -> Result<StatsBody, ClientError> {
        match self.expect(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            other => Err(ClientError::Unexpected(Box::new(other))),
        }
    }

    /// Requests graceful shutdown; returns the number of jobs the daemon
    /// will drain before exiting.
    ///
    /// # Errors
    ///
    /// Transport, decode and server failures.
    pub fn shutdown(&mut self) -> Result<u64, ClientError> {
        match self.expect(&Request::Shutdown)? {
            Response::ShuttingDown { pending } => Ok(pending),
            other => Err(ClientError::Unexpected(Box::new(other))),
        }
    }
}
