//! A blocking client for the daemon's NDJSON protocol, shared by the
//! `qlosure-cli` binary, the throughput bench and the integration tests.

use crate::net::{Endpoint, Stream};
use crate::proto::{
    encode_request, parse_response, ErrorCode, EventsBody, HistoryBody, MetricsBody, Priority,
    ProtoError, Request, Response, SpanNode, StatsBody, Strategy, Summary, MAX_FRAME,
};
use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;
use std::time::{Duration, Instant};

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(std::io::Error),
    /// The daemon sent a frame this client cannot decode (likely a
    /// protocol-version skew).
    Proto(ProtoError),
    /// The daemon answered with a typed error.
    Server {
        /// Machine-readable category.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// The daemon answered something structurally valid but unexpected
    /// for the request that was sent.
    Unexpected(Box<Response>),
    /// The daemon closed the connection.
    Closed,
    /// [`Client::wait`] ran out of time.
    Timeout {
        /// The job that was being waited on.
        id: u64,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "I/O error: {e}"),
            ClientError::Proto(e) => write!(f, "protocol error: {e}"),
            ClientError::Server { code, message } => write!(f, "server error [{code}]: {message}"),
            ClientError::Unexpected(r) => write!(f, "unexpected response: {r:?}"),
            ClientError::Closed => write!(f, "daemon closed the connection"),
            ClientError::Timeout { id } => write!(f, "timed out waiting for job {id}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Proto(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A persistent connection to a `qlosured` daemon (or a `qlosure-router`
/// — same protocol) over either transport.
pub struct Client {
    reader: BufReader<Stream>,
    writer: Stream,
}

impl Client {
    /// Connects to the daemon on the Unix socket at `socket` (the
    /// historical entry point; see [`Client::connect_endpoint`] for TCP).
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(socket: impl AsRef<Path>) -> std::io::Result<Client> {
        Client::connect_endpoint(&Endpoint::Unix(socket.as_ref().to_path_buf()))
    }

    /// Connects to the daemon at `endpoint` (Unix socket or TCP).
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect_endpoint(endpoint: &Endpoint) -> std::io::Result<Client> {
        let stream = Stream::connect(endpoint)?;
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    /// Sends one request frame and reads one response frame. Typed
    /// daemon errors come back as `Ok(Response::Error { .. })`; the
    /// convenience wrappers below convert them to [`ClientError::Server`].
    ///
    /// # Errors
    ///
    /// Transport and decode failures.
    pub fn request(&mut self, request: &Request) -> Result<Response, ClientError> {
        let frame = encode_request(request).map_err(std::io::Error::other)?;
        self.writer.write_all(format!("{frame}\n").as_bytes())?;
        self.writer.flush()?;
        let mut buf = Vec::new();
        let n = (&mut self.reader)
            .take((MAX_FRAME + 2) as u64)
            .read_until(b'\n', &mut buf)?;
        if n == 0 {
            return Err(ClientError::Closed);
        }
        while matches!(buf.last(), Some(b'\n' | b'\r')) {
            buf.pop();
        }
        let line = String::from_utf8(buf)
            .map_err(|_| ClientError::Proto(ProtoError::Shape("non-UTF-8 frame".to_string())))?;
        parse_response(&line).map_err(ClientError::Proto)
    }

    fn expect(&mut self, request: &Request) -> Result<Response, ClientError> {
        match self.request(request)? {
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            response => Ok(response),
        }
    }

    /// Submits a job with the flat mapping strategy and returns its
    /// request ID.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] for typed rejections (unknown backend,
    /// full queue, …) plus transport failures.
    pub fn submit(
        &mut self,
        backend: &str,
        mapper: &str,
        qasm: &str,
        priority: Priority,
        fidelity: bool,
    ) -> Result<u64, ClientError> {
        self.submit_with_strategy(backend, mapper, qasm, priority, fidelity, Strategy::Flat)
    }

    /// Submits a job under an explicit mapping [`Strategy`]
    /// (`flat`/`hier`/`auto`) and returns its request ID.
    ///
    /// # Errors
    ///
    /// Same as [`Client::submit`].
    pub fn submit_with_strategy(
        &mut self,
        backend: &str,
        mapper: &str,
        qasm: &str,
        priority: Priority,
        fidelity: bool,
        strategy: Strategy,
    ) -> Result<u64, ClientError> {
        self.submit_traced(backend, mapper, qasm, priority, fidelity, strategy, false)
    }

    /// Submits a job with every wire knob exposed, including the `trace`
    /// opt-in that makes the daemon retain the job's span tree for a
    /// later [`Client::trace`] call.
    ///
    /// # Errors
    ///
    /// Same as [`Client::submit`].
    #[allow(clippy::too_many_arguments)] // mirrors the wire fields 1:1
    pub fn submit_traced(
        &mut self,
        backend: &str,
        mapper: &str,
        qasm: &str,
        priority: Priority,
        fidelity: bool,
        strategy: Strategy,
        trace: bool,
    ) -> Result<u64, ClientError> {
        let request = Request::Submit {
            backend: backend.to_string(),
            mapper: mapper.to_string(),
            qasm: qasm.to_string(),
            priority,
            fidelity,
            strategy,
            trace,
        };
        match self.expect(&request)? {
            Response::Submitted { id } => Ok(id),
            other => Err(ClientError::Unexpected(Box::new(other))),
        }
    }

    /// Fetches the retained span tree for job `id` as
    /// `(trace_id, root span)`.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] with [`ErrorCode::UnknownId`] when no
    /// trace was retained for the job, plus transport failures.
    pub fn trace(&mut self, id: u64) -> Result<(String, SpanNode), ClientError> {
        match self.expect(&Request::Trace { id })? {
            Response::Trace { trace_id, root, .. } => Ok((trace_id, root)),
            other => Err(ClientError::Unexpected(Box::new(other))),
        }
    }

    /// One poll round trip (pending/done/failed/error, undigested).
    ///
    /// # Errors
    ///
    /// Transport and decode failures.
    pub fn poll(&mut self, id: u64) -> Result<Response, ClientError> {
        self.request(&Request::Poll { id })
    }

    /// Polls until job `id` completes, backing off exponentially between
    /// rounds (10 ms doubling to a 100 ms cap — see `wait_backoff`) so
    /// N waiting clients do not saturate a shard's accept loop the way a
    /// fixed 10 ms hammer would.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] with [`ErrorCode::MappingFailed`] when the
    /// job failed, [`ClientError::Timeout`] past the deadline, plus
    /// transport failures.
    pub fn wait(&mut self, id: u64, timeout: Duration) -> Result<Summary, ClientError> {
        let deadline = Instant::now() + timeout;
        let mut round = 0u32;
        loop {
            match self.expect(&Request::Poll { id })? {
                Response::Done { summary, .. } => return Ok(summary),
                Response::Failed { message, .. } => {
                    return Err(ClientError::Server {
                        code: ErrorCode::MappingFailed,
                        message,
                    })
                }
                Response::Pending { .. } => {
                    if Instant::now() >= deadline {
                        return Err(ClientError::Timeout { id });
                    }
                    std::thread::sleep(wait_backoff(round));
                    round += 1;
                }
                other => return Err(ClientError::Unexpected(Box::new(other))),
            }
        }
    }

    /// Fetches the daemon counters.
    ///
    /// # Errors
    ///
    /// Transport, decode and server failures.
    pub fn stats(&mut self) -> Result<StatsBody, ClientError> {
        match self.expect(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            other => Err(ClientError::Unexpected(Box::new(other))),
        }
    }

    /// Fetches the scrape-oriented metrics superset (counters plus
    /// queue-delay percentiles and per-pass timing aggregates).
    ///
    /// # Errors
    ///
    /// Transport, decode and server failures.
    pub fn metrics(&mut self) -> Result<MetricsBody, ClientError> {
        match self.expect(&Request::Metrics)? {
            Response::Metrics(metrics) => Ok(metrics),
            other => Err(ClientError::Unexpected(Box::new(other))),
        }
    }

    /// Fetches the sampler's metrics-history window: one time series per
    /// shard (a lone daemon reports itself as shard 0) with computed
    /// rates over each window.
    ///
    /// # Errors
    ///
    /// Transport, decode and server failures.
    pub fn metrics_history(&mut self) -> Result<HistoryBody, ClientError> {
        match self.expect(&Request::MetricsHistory)? {
            Response::MetricsHistory(history) => Ok(history),
            other => Err(ClientError::Unexpected(Box::new(other))),
        }
    }

    /// Fetches the journal window: events at `min_level` or above with a
    /// sequence number strictly greater than `after_seq` (pass the
    /// highest seq already seen to tail incrementally; `0` for
    /// everything retained).
    ///
    /// # Errors
    ///
    /// Transport, decode and server failures.
    pub fn events(
        &mut self,
        min_level: obs::Level,
        after_seq: u64,
    ) -> Result<EventsBody, ClientError> {
        match self.expect(&Request::Events {
            min_level,
            after_seq,
        })? {
            Response::Events(events) => Ok(events),
            other => Err(ClientError::Unexpected(Box::new(other))),
        }
    }

    /// Requests graceful shutdown; returns the number of jobs the daemon
    /// will drain before exiting.
    ///
    /// # Errors
    ///
    /// Transport, decode and server failures.
    pub fn shutdown(&mut self) -> Result<u64, ClientError> {
        match self.expect(&Request::Shutdown)? {
            Response::ShuttingDown { pending } => Ok(pending),
            other => Err(ClientError::Unexpected(Box::new(other))),
        }
    }
}

/// The poll backoff schedule for [`Client::wait`]: round `n` sleeps
/// `10 ms × 2^n`, capped at 100 ms — 10, 20, 40, 80, 100, 100, …
fn wait_backoff(round: u32) -> Duration {
    const BASE_MS: u64 = 10;
    const CAP_MS: u64 = 100;
    Duration::from_millis((BASE_MS << round.min(4)).min(CAP_MS))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wait_backoff_doubles_to_a_hundred_ms_cap() {
        let schedule: Vec<u64> = (0..8).map(|r| wait_backoff(r).as_millis() as u64).collect();
        assert_eq!(schedule, [10, 20, 40, 80, 100, 100, 100, 100]);
        // Far-out rounds must not overflow the shift or exceed the cap.
        assert_eq!(wait_backoff(u32::MAX), Duration::from_millis(100));
    }
}
