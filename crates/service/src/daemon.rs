//! The `qlosured` daemon: a Unix-domain-socket server speaking the
//! [`proto`](crate::proto) NDJSON protocol in front of a
//! [`MappingService`].
//!
//! One thread per connection reads frames line by line (bounded at
//! [`MAX_FRAME`] bytes), decodes, dispatches, and writes one response
//! line per request. A `shutdown` request closes intake, drains every
//! admitted job, removes the socket file and returns the final counters —
//! the graceful-shutdown contract of the intake layer, surfaced over the
//! wire.

use crate::intake::{JobOutcome, MappingService, PollReply, ServiceConfig};
use crate::proto::{
    encode_response, parse_request, ErrorCode, Request, Response, StatsBody, MAX_FRAME,
};
use crate::registry;
use std::io::{BufRead, BufReader, Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How the daemon is sized and where it listens.
#[derive(Clone, Debug)]
pub struct DaemonConfig {
    /// Unix-domain socket path; a stale file at this path is replaced.
    pub socket: PathBuf,
    /// Intake-layer sizing.
    pub service: ServiceConfig,
}

impl DaemonConfig {
    /// A daemon at `socket` with default service sizing.
    pub fn at(socket: impl Into<PathBuf>) -> Self {
        DaemonConfig {
            socket: socket.into(),
            service: ServiceConfig::default(),
        }
    }
}

/// A daemon running on a background thread (in-process harnesses: tests,
/// the throughput bench).
pub struct DaemonHandle {
    /// The socket path the daemon is serving on.
    pub socket: PathBuf,
    thread: JoinHandle<std::io::Result<StatsBody>>,
}

impl DaemonHandle {
    /// Waits for the daemon to exit (after a client sends `shutdown`) and
    /// returns its final counters.
    ///
    /// # Errors
    ///
    /// Propagates the accept loop's I/O errors.
    ///
    /// # Panics
    ///
    /// Panics if the daemon thread itself panicked.
    pub fn join(self) -> std::io::Result<StatsBody> {
        self.thread.join().expect("daemon thread panicked")
    }
}

/// Binds the socket and serves on a background thread. The socket is
/// bound synchronously, so clients may connect as soon as this returns.
///
/// # Errors
///
/// Propagates socket binding errors.
pub fn spawn(config: DaemonConfig) -> std::io::Result<DaemonHandle> {
    let listener = bind(&config.socket)?;
    let socket = config.socket.clone();
    let thread = std::thread::spawn(move || serve(listener, config));
    Ok(DaemonHandle { socket, thread })
}

/// Binds the socket and serves on the calling thread until a client
/// requests shutdown; returns the final counters. This is `qlosured`'s
/// main loop.
///
/// # Errors
///
/// Propagates socket binding and accept-loop I/O errors.
pub fn run(config: DaemonConfig) -> std::io::Result<StatsBody> {
    let listener = bind(&config.socket)?;
    serve(listener, config)
}

fn bind(socket: &PathBuf) -> std::io::Result<UnixListener> {
    // A previous daemon's socket file would make bind fail with
    // AddrInUse; a *live* daemon is the operator's problem, a stale file
    // is ours.
    if socket.exists() {
        std::fs::remove_file(socket)?;
    }
    UnixListener::bind(socket)
}

fn serve(listener: UnixListener, config: DaemonConfig) -> std::io::Result<StatsBody> {
    let service = Arc::new(MappingService::start(config.service));
    let shutdown = Arc::new(AtomicBool::new(false));
    // Polling accept: `UnixListener::accept` has no portable wakeup, and a
    // 25 ms poll is far below any human or CI observable latency.
    listener.set_nonblocking(true)?;
    let mut accept_error = None;
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _addr)) => {
                let (service, shutdown) = (service.clone(), shutdown.clone());
                // Connection threads are detached: they hold only the
                // service Arc, exit at client EOF, and after shutdown any
                // late submit gets a typed shutting-down error.
                std::thread::spawn(move || {
                    let _ = handle_connection(&service, &shutdown, stream);
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(e) => {
                // A fatal accept error still drains admitted work and
                // removes the socket file before surfacing.
                accept_error = Some(e);
                break;
            }
        }
    }
    let stats = service.shutdown();
    std::fs::remove_file(&config.socket).ok();
    match accept_error {
        Some(e) => Err(e),
        None => Ok(stats),
    }
}

/// Reads one `\n`-terminated frame with the [`MAX_FRAME`] bound applied
/// *while reading*, so an adversarial multi-gigabyte line is cut off
/// rather than buffered. Returns `Ok(None)` at EOF and `Err(len)` when
/// the bound was hit before the newline.
fn read_frame<R: BufRead>(reader: &mut R) -> std::io::Result<Result<Option<String>, usize>> {
    let mut buf = Vec::new();
    let n = reader
        .take((MAX_FRAME + 2) as u64)
        .read_until(b'\n', &mut buf)?;
    if n == 0 {
        return Ok(Ok(None));
    }
    if buf.last() != Some(&b'\n') && buf.len() > MAX_FRAME {
        return Ok(Err(buf.len()));
    }
    while matches!(buf.last(), Some(b'\n' | b'\r')) {
        buf.pop();
    }
    match String::from_utf8(buf) {
        Ok(line) => Ok(Ok(Some(line))),
        // Surface invalid UTF-8 as an empty unparseable frame; the
        // dispatcher answers with a typed bad-request error.
        Err(_) => Ok(Ok(Some("\u{FFFD}".to_string()))),
    }
}

fn handle_connection(
    service: &MappingService,
    shutdown: &AtomicBool,
    stream: UnixStream,
) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    loop {
        let line = match read_frame(&mut reader)? {
            Ok(None) => return Ok(()), // client hung up
            Ok(Some(line)) => line,
            Err(len) => {
                // The connection is desynchronized past an oversized
                // frame; answer and close.
                let response = Response::Error {
                    code: ErrorCode::Oversized,
                    message: format!("frame of {len}+ bytes exceeds the {MAX_FRAME}-byte limit"),
                };
                let frame = encode_response(&response).map_err(std::io::Error::other)?;
                writer.write_all(format!("{frame}\n").as_bytes())?;
                return Ok(());
            }
        };
        if line.is_empty() {
            continue; // tolerate blank keep-alive lines
        }
        let (response, end) = dispatch(service, shutdown, &line);
        let frame = encode_response(&response).map_err(std::io::Error::other)?;
        writer.write_all(format!("{frame}\n").as_bytes())?;
        writer.flush()?;
        if end {
            return Ok(());
        }
    }
}

/// Decodes and executes one frame; the flag says whether this frame ends
/// the connection (a shutdown acknowledgement).
fn dispatch(service: &MappingService, shutdown: &AtomicBool, line: &str) -> (Response, bool) {
    let request = match parse_request(line) {
        Ok(request) => request,
        Err(e) => {
            return (
                Response::Error {
                    code: e.code(),
                    message: e.to_string(),
                },
                false,
            )
        }
    };
    match request {
        Request::Submit {
            backend,
            mapper,
            qasm,
            priority,
            fidelity,
            strategy,
        } => {
            let spec = match registry::decode_submit(
                &backend, &mapper, &qasm, priority, fidelity, strategy,
            ) {
                Ok(spec) => spec,
                Err((code, message)) => return (Response::Error { code, message }, false),
            };
            match service.submit(spec) {
                Ok(id) => (Response::Submitted { id }, false),
                Err((code, message)) => (Response::Error { code, message }, false),
            }
        }
        Request::Poll { id } => (
            match service.poll(id) {
                PollReply::Unknown => Response::Error {
                    code: ErrorCode::UnknownId,
                    message: format!("no job {id} (never submitted, or its result was evicted)"),
                },
                PollReply::Pending { running } => Response::Pending { id, running },
                PollReply::Finished(JobOutcome::Done(summary)) => Response::Done { id, summary },
                PollReply::Finished(JobOutcome::Failed(message)) => {
                    Response::Failed { id, message }
                }
            },
            false,
        ),
        Request::Stats => (Response::Stats(service.stats()), false),
        Request::Shutdown => {
            // Stop admissions immediately so the pending count is final,
            // then let the accept loop run the drain.
            service.begin_shutdown();
            shutdown.store(true, Ordering::SeqCst);
            (
                Response::ShuttingDown {
                    pending: service.pending(),
                },
                true,
            )
        }
    }
}
