//! The `qlosured` daemon: a Unix-domain-socket or TCP server speaking
//! the [`proto`](crate::proto) NDJSON protocol in front of a
//! [`MappingService`].
//!
//! One thread per connection reads frames line by line (bounded at
//! `MAX_FRAME` bytes), decodes, dispatches, and writes one response line
//! per request. The connection layer is the hardened plumbing from
//! [`crate::net`]: a connection cap with typed `busy` refusals, a
//! per-connection idle deadline (no slowloris pinning an OS thread), and
//! graceful shutdown that *joins* every live connection thread. A
//! `shutdown` request closes intake, drains every admitted job, removes
//! the socket file (Unix transport) and returns the final counters — the
//! graceful-shutdown contract of the intake layer, surfaced over the
//! wire.

use crate::intake::{JobOutcome, MappingService, PollReply, ServiceConfig};
use crate::net::{self, ConnLimits, Endpoint, FrameEvent, Listener, Stream};
use crate::proto::{
    encode_response, parse_request, ErrorCode, EventBody, EventsBody, Request, Response, SpanNode,
    StatsBody, MAX_FRAME,
};
use crate::registry;
use std::io::{BufReader, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Default connection cap: far above any test or CI harness, far below
/// "a runaway client pinned ten thousand OS threads".
pub const DEFAULT_MAX_CONNECTIONS: usize = 64;

/// Default per-connection idle deadline: a connection with no complete
/// frame for this long is closed.
pub const DEFAULT_READ_TIMEOUT: Duration = Duration::from_secs(30);

/// How the daemon is sized and where it listens.
#[derive(Clone, Debug)]
pub struct DaemonConfig {
    /// Where to listen: a Unix socket path or a TCP address. A stale
    /// Unix socket file is replaced; a *live* one refuses with
    /// `AddrInUse`.
    pub endpoint: Endpoint,
    /// Intake-layer sizing.
    pub service: ServiceConfig,
    /// Live connections beyond this are refused with a typed `busy`
    /// error frame.
    pub max_connections: usize,
    /// Idle deadline per connection: no complete frame for this long and
    /// the connection is closed.
    pub read_timeout: Duration,
    /// Optional disk tier of the hierarchical plan store
    /// (`--plan-store <dir>`): SWAP plans persist under this directory
    /// and survive daemon restarts, so a fresh process replays plans an
    /// earlier one computed.
    pub plan_store: Option<std::path::PathBuf>,
}

impl DaemonConfig {
    /// A daemon on the Unix socket at `socket` with default sizing.
    pub fn at(socket: impl Into<std::path::PathBuf>) -> Self {
        DaemonConfig::listening(Endpoint::Unix(socket.into()))
    }

    /// A daemon on `endpoint` with default sizing.
    pub fn listening(endpoint: Endpoint) -> Self {
        DaemonConfig {
            endpoint,
            service: ServiceConfig::default(),
            max_connections: DEFAULT_MAX_CONNECTIONS,
            read_timeout: DEFAULT_READ_TIMEOUT,
            plan_store: None,
        }
    }
}

/// A daemon running on a background thread (in-process harnesses: tests,
/// the throughput and fleet benches).
pub struct DaemonHandle {
    /// The endpoint the daemon is actually serving on — for TCP with
    /// port 0 this is the kernel-resolved port, ready to connect to.
    pub endpoint: Endpoint,
    thread: JoinHandle<std::io::Result<StatsBody>>,
}

impl DaemonHandle {
    /// Waits for the daemon to exit (after a client sends `shutdown`) and
    /// returns its final counters.
    ///
    /// # Errors
    ///
    /// Propagates the accept loop's I/O errors.
    ///
    /// # Panics
    ///
    /// Panics if the daemon thread itself panicked.
    pub fn join(self) -> std::io::Result<StatsBody> {
        self.thread.join().expect("daemon thread panicked")
    }
}

/// Binds the endpoint and serves on a background thread. The listener is
/// bound synchronously, so clients may connect as soon as this returns.
///
/// # Errors
///
/// Propagates binding errors — including `AddrInUse` when a live daemon
/// already answers on a Unix socket path.
pub fn spawn(config: DaemonConfig) -> std::io::Result<DaemonHandle> {
    let listener = net::bind(&config.endpoint)?;
    let endpoint = listener.local_endpoint(&config.endpoint);
    let thread = std::thread::spawn(move || serve(listener, config));
    Ok(DaemonHandle { endpoint, thread })
}

/// Binds the endpoint and serves on the calling thread until a client
/// requests shutdown; returns the final counters. This is `qlosured`'s
/// main loop.
///
/// # Errors
///
/// Propagates binding and accept-loop I/O errors.
pub fn run(config: DaemonConfig) -> std::io::Result<StatsBody> {
    let listener = net::bind(&config.endpoint)?;
    serve(listener, config)
}

fn serve(listener: Listener, config: DaemonConfig) -> std::io::Result<StatsBody> {
    // The journal is inert until a daemon turns it on; one-shot library
    // consumers never pay for it.
    obs::enable();
    if let Some(dir) = &config.plan_store {
        // Attach the persistent plan tier before any job routes; a
        // damaged store file degrades to warnings at scan time.
        hier::configure_plan_store(dir)?;
    }
    let service = Arc::new(MappingService::start(config.service.clone()));
    let shutdown = Arc::new(AtomicBool::new(false));
    let limits = ConnLimits {
        max_connections: config.max_connections.max(1),
        read_timeout: config.read_timeout,
    };
    let handler = {
        let (service, shutdown) = (service.clone(), shutdown.clone());
        let idle = config.read_timeout;
        Arc::new(move |stream: Stream| {
            let _ = handle_connection(&service, &shutdown, idle, stream);
        })
    };
    let served = net::accept_loop(&listener, &shutdown, limits, handler);
    let stats = service.shutdown();
    if let Endpoint::Unix(path) = &config.endpoint {
        std::fs::remove_file(path).ok();
    }
    served.map(|()| stats)
}

fn handle_connection(
    service: &MappingService,
    shutdown: &Arc<AtomicBool>,
    idle_limit: Duration,
    stream: Stream,
) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    loop {
        let line = match net::read_frame(&mut reader, shutdown, idle_limit)? {
            FrameEvent::Frame(line) => line,
            // Client hung up or the daemon is shutting down: close so
            // the accept loop can join.
            FrameEvent::Eof | FrameEvent::Shutdown => return Ok(()),
            // Idle past the deadline: same close, but journaled — a
            // client that keeps timing out is worth noticing.
            FrameEvent::IdleTimeout => {
                obs::event(
                    obs::Level::Info,
                    "net",
                    "idle connection disconnected",
                    &[("idle_seconds", &format!("{:.1}", idle_limit.as_secs_f64()))],
                );
                return Ok(());
            }
            FrameEvent::Oversized(len) => {
                // The connection is desynchronized past an oversized
                // frame; answer and close.
                let response = Response::Error {
                    code: ErrorCode::Oversized,
                    message: format!("frame of {len}+ bytes exceeds the {MAX_FRAME}-byte limit"),
                };
                let frame = encode_response(&response).map_err(std::io::Error::other)?;
                writer.write_all(format!("{frame}\n").as_bytes())?;
                return Ok(());
            }
        };
        if line.is_empty() {
            continue; // tolerate blank keep-alive lines
        }
        let (response, end) = dispatch(service, shutdown, &line);
        let frame = encode_response(&response).map_err(std::io::Error::other)?;
        writer.write_all(format!("{frame}\n").as_bytes())?;
        writer.flush()?;
        if end {
            return Ok(());
        }
    }
}

/// Snapshots the process-local event journal into a wire body: events
/// past `after_seq` at `min_level` or above, ages computed against the
/// journal clock at snapshot time. Shared with the router, which serves
/// its own journal as one more stream next to its shards'.
pub(crate) fn journal_window(min_level: obs::Level, after_seq: u64) -> EventsBody {
    let (dropped, events) = obs::events_since(after_seq, min_level);
    let now_ns = obs::now_ns();
    EventsBody {
        dropped,
        events: events
            .into_iter()
            .map(|event| EventBody {
                seq: event.seq,
                age_seconds: now_ns.saturating_sub(event.at_ns) as f64 * 1e-9,
                level: event.level,
                subsystem: event.subsystem.to_string(),
                message: event.message.to_string(),
                fields: event.fields,
            })
            .collect(),
    }
}

/// Decodes and executes one frame; the flag says whether this frame ends
/// the connection (a shutdown acknowledgement).
fn dispatch(service: &MappingService, shutdown: &AtomicBool, line: &str) -> (Response, bool) {
    let request = match parse_request(line) {
        Ok(request) => request,
        Err(e) => {
            return (
                Response::Error {
                    code: e.code(),
                    message: e.to_string(),
                },
                false,
            )
        }
    };
    match request {
        Request::Submit {
            backend,
            mapper,
            qasm,
            priority,
            fidelity,
            strategy,
            trace,
        } => {
            let mut spec = match registry::decode_submit(
                &backend, &mapper, &qasm, priority, fidelity, strategy,
            ) {
                Ok(spec) => spec,
                Err((code, message)) => return (Response::Error { code, message }, false),
            };
            spec.trace = trace;
            match service.submit(spec) {
                Ok(id) => (Response::Submitted { id }, false),
                Err((code, message)) => (Response::Error { code, message }, false),
            }
        }
        Request::Poll { id } => (
            match service.poll(id) {
                PollReply::Unknown => Response::Error {
                    code: ErrorCode::UnknownId,
                    message: format!("no job {id} (never submitted, or its result was evicted)"),
                },
                PollReply::Pending { running } => Response::Pending { id, running },
                PollReply::Finished(JobOutcome::Done(summary)) => Response::Done { id, summary },
                PollReply::Finished(JobOutcome::Failed(message)) => {
                    Response::Failed { id, message }
                }
            },
            false,
        ),
        Request::Trace { id } => (
            match service.trace(id).and_then(|(trace_id, spans)| {
                SpanNode::from_spans(&spans).map(|root| (trace_id, root))
            }) {
                Some((trace_id, root)) => Response::Trace { id, trace_id, root },
                None => Response::Error {
                    code: ErrorCode::UnknownId,
                    message: format!(
                        "no trace for job {id} (tracing not requested, the job was not \
                         slow enough to retain, or the bounded store evicted it)"
                    ),
                },
            },
            false,
        ),
        Request::Stats => (Response::Stats(service.stats()), false),
        Request::Metrics => (Response::Metrics(service.metrics()), false),
        Request::MetricsHistory => (Response::MetricsHistory(service.history()), false),
        Request::Events {
            min_level,
            after_seq,
        } => (
            Response::Events(journal_window(min_level, after_seq)),
            false,
        ),
        Request::Shutdown => {
            // Stop admissions immediately so the pending count is final,
            // then let the accept loop run the drain.
            service.begin_shutdown();
            shutdown.store(true, Ordering::SeqCst);
            (
                Response::ShuttingDown {
                    pending: service.pending(),
                },
                true,
            )
        }
    }
}
