//! The asynchronous intake layer: bounded admission, priority scheduling,
//! and the bounded FIFO result store.
//!
//! A [`MappingService`] is the daemon's engine room, usable in-process
//! without any socket (the integration tests and the throughput bench
//! exercise it both ways):
//!
//! ```text
//!   submit() ──▶ admission queue ──▶ scheduler thread ──▶ StreamEngine
//!              (bounded, 2 classes)  (interactive first)  (N workers)
//!                                                              │
//!   poll()/wait() ◀── result store ◀── collector thread ◀──────┘
//!                  (bounded FIFO, seq-stamped)
//! ```
//!
//! * **Admission** is non-blocking and bounded: a full queue rejects with
//!   [`ErrorCode::QueueFull`] rather than stalling the connection thread.
//! * **Priority**: the scheduler always drains interactive jobs before
//!   batch jobs; within a class, FIFO. The engine-side queue is kept
//!   shallow (one slot per worker) so priority is decided here, not in a
//!   deep downstream buffer.
//! * **Results** land in a bounded FIFO store keyed by request ID and
//!   stamped with a completion sequence number; when the store is full
//!   the oldest result is evicted (a later poll gets
//!   [`ErrorCode::UnknownId`]).
//! * **Shutdown** ([`MappingService::shutdown`]) closes intake, drains
//!   everything already admitted, then joins the scheduler, collector and
//!   worker threads. Dropping the service does the same.
//!
//! Two more daemon threads watch the service itself: a **sampler**
//! snapshots the full metrics body into a bounded history ring every
//! [`ServiceConfig::obs_sample_seconds`] (served by `metrics-history`),
//! and a **stall watchdog** flags jobs in flight longer than
//! [`ServiceConfig::stall_after_seconds`] — a `warn` journal event plus
//! a flight record (partial span tree + journal tail) in the trace
//! store, retrievable like any other trace.

use crate::proto::{
    ErrorCode, HistoryBody, MetricsBody, Priority, RatesBody, SampleBody, SeriesBody, StatsBody,
    Summary, PROTOCOL_VERSION,
};
use circuit::{verify_routing, Circuit};
use engine::{BatchEngine, StreamEngine};
use qlosure::{FidelityPass, Mapper, MappingResult};
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use topology::{CouplingGraph, NoiseModel};

/// Sizing of a [`MappingService`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Mapping worker threads. Defaults to the `ENGINE_THREADS`
    /// environment variable via [`BatchEngine::from_env`].
    pub workers: usize,
    /// Admission-queue bound (both priority classes combined).
    pub queue_capacity: usize,
    /// Result-store bound (completed jobs retained for polling).
    pub results_capacity: usize,
    /// Jobs whose mapping wall-clock exceeds this many seconds keep their
    /// span tree even when the submit did not request tracing — the trace
    /// you want most is the one for the job you did not expect to be slow.
    pub trace_slow_seconds: f64,
    /// Trace-store bound (span trees retained for the `trace` request);
    /// `0` disables retention entirely.
    pub traces_capacity: usize,
    /// Interval between metrics snapshots taken by the sampler thread
    /// into the bounded history ring behind the `metrics-history`
    /// request. Non-positive disables the sampler.
    pub obs_sample_seconds: f64,
    /// In-flight jobs running longer than this many seconds are flagged
    /// by the stall watchdog: a `warn` journal event plus a flight
    /// record (partial span tree + recent journal tail) in the trace
    /// store. `0.0` flags on the first tick; negative disables.
    pub stall_after_seconds: f64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: BatchEngine::from_env().threads(),
            queue_capacity: 256,
            results_capacity: 1024,
            trace_slow_seconds: 30.0,
            traces_capacity: 64,
            obs_sample_seconds: 10.0,
            stall_after_seconds: 60.0,
        }
    }
}

/// Per-job span-sink bound. Every job records into its own tracer (the
/// slow-job retention policy needs the spans before knowing the job was
/// slow), so the sink must stay small: past this many spans the tracer
/// counts drops instead of growing.
const TRACE_SPAN_CAPACITY: usize = 4096;

/// A fully decoded submission, ready to schedule.
#[derive(Clone)]
pub struct JobSpec {
    /// The logical circuit to route.
    pub circuit: Arc<Circuit>,
    /// The target device.
    pub device: Arc<CouplingGraph>,
    /// The mapper to run.
    pub mapper: Arc<dyn Mapper + Send + Sync>,
    /// Scheduling class.
    pub priority: Priority,
    /// Opt-in fidelity estimation: the noise model to evaluate the routed
    /// circuit under (`None` skips the estimate).
    pub noise: Option<NoiseModel>,
    /// Whether the submitter asked for the job's span tree to be retained
    /// for a later `trace` request. Spans are recorded either way (the
    /// slow-job policy may retain them); this flag only forces retention.
    pub trace: bool,
}

impl std::fmt::Debug for JobSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobSpec")
            .field("circuit_qubits", &self.circuit.n_qubits())
            .field("device", &self.device.name())
            .field("mapper", &self.mapper.name())
            .field("priority", &self.priority)
            .field("fidelity", &self.noise.is_some())
            .field("trace", &self.trace)
            .finish()
    }
}

struct AdmittedJob {
    id: u64,
    spec: JobSpec,
    /// Admission stamp on the shared trace clock — the same stamp feeds
    /// the queue-wait span and the `queue_seconds` percentile sample, so
    /// the two agree bit-for-bit.
    admitted_ns: u64,
    tracer: Arc<trace::Tracer>,
}

/// Where a known job currently is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    Queued,
    Running,
    Done,
}

/// A completed job's stored outcome.
#[derive(Clone, Debug)]
pub enum JobOutcome {
    /// Mapping succeeded and verified; the summary is pollable.
    Done(Summary),
    /// Mapping failed; the message is pollable.
    Failed(String),
}

/// Reply to [`MappingService::poll`].
#[derive(Clone, Debug)]
pub enum PollReply {
    /// The ID was never assigned, or its result was evicted from the
    /// bounded store.
    Unknown,
    /// Still in the admission queue or the engine.
    Pending {
        /// `true` once the scheduler moved the job out of the admission
        /// queue toward the workers (it is running or about to run —
        /// past the point where priority can reorder it).
        running: bool,
    },
    /// The job finished; here is its stored outcome.
    Finished(JobOutcome),
}

#[derive(Default)]
struct Counters {
    submitted: u64,
    completed: u64,
    rejected: u64,
    failed: u64,
}

/// How many recent queue-delay samples the metrics percentiles are
/// computed over (bounded FIFO window, newest-biased like any scrape).
const QUEUE_SAMPLE_WINDOW: usize = 1024;

/// Metrics-history ring bound: one hour of snapshots at the default
/// 10-second sampling interval. The oldest sample is evicted first.
const HISTORY_CAPACITY: usize = 360;

/// How many journal-tail events a stall flight record carries in its
/// `watchdog:stall` span notes.
const FLIGHT_RECORD_EVENTS: usize = 8;

/// Synthetic span ID for the `watchdog:stall` marker inside a flight
/// record — far above anything a per-job tracer hands out (span IDs
/// count up from 1 and the sink is bounded at [`TRACE_SPAN_CAPACITY`]).
const STALL_SPAN: u64 = u64::MAX;

/// What the watchdog knows about a dispatched-but-unfinished job.
struct RunningInfo {
    tracer: Arc<trace::Tracer>,
    admitted_ns: u64,
    mapper: String,
    backend: String,
    /// Set once the watchdog flags the job, so a genuinely stuck job is
    /// reported once rather than on every tick.
    stalled: bool,
}

struct ServiceState {
    interactive: VecDeque<AdmittedJob>,
    batch: VecDeque<AdmittedJob>,
    phases: HashMap<u64, Phase>,
    results: HashMap<u64, JobOutcome>,
    result_order: VecDeque<u64>,
    next_id: u64,
    next_seq: u64,
    counters: Counters,
    /// Queue delays of recently completed jobs (seconds), bounded at
    /// [`QUEUE_SAMPLE_WINDOW`] — the raw material of the `metrics`
    /// percentiles.
    queue_samples: VecDeque<f64>,
    /// Per-pass `(runs, total_seconds)` accumulated over every
    /// successfully completed job, keyed by pass label.
    pass_totals: HashMap<String, (u64, f64)>,
    /// Retained span trees (`trace_id`, spans) keyed by job ID, bounded
    /// FIFO like the result store.
    traces: HashMap<u64, (String, Vec<trace::Span>)>,
    trace_order: VecDeque<u64>,
    /// Jobs handed to the engine and not yet collected, keyed by job ID —
    /// the stall watchdog's scan set.
    running: HashMap<u64, RunningInfo>,
    /// Periodic metrics snapshots, bounded at [`HISTORY_CAPACITY`] — the
    /// raw material of the `metrics-history` response.
    history: VecDeque<SampleBody>,
    /// Monotone index stamped onto every history sample; survives ring
    /// eviction so scrapers can detect gaps and merges can align.
    next_sample_index: u64,
    closing: bool,
}

struct Inner {
    state: Mutex<ServiceState>,
    /// Scheduler wakes here on admission and on shutdown.
    intake_cv: Condvar,
    /// `wait`/`drain` waiters wake here on completions.
    done_cv: Condvar,
    /// Sampler and watchdog interval waits park here; notified at
    /// shutdown so both daemon threads exit promptly instead of
    /// sleeping out their tick.
    obs_cv: Condvar,
    config: ServiceConfig,
    /// Service start stamp on the shared trace clock — the origin of the
    /// `qlosure_uptime_seconds` gauge.
    started_ns: u64,
}

type WorkItem = (u64, Box<AdmittedJob>);
type WorkOutput = (u64, JobOutcome, bool, Arc<trace::Tracer>);

/// The persistent mapping service; see the [module docs](self).
pub struct MappingService {
    inner: Arc<Inner>,
    stream: Arc<StreamEngine<WorkItem, WorkOutput>>,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

impl MappingService {
    /// Starts the service: spawns the mapping workers, the scheduler and
    /// the collector.
    pub fn start(config: ServiceConfig) -> MappingService {
        let workers = config.workers.max(1);
        let inner = Arc::new(Inner {
            state: Mutex::new(ServiceState {
                interactive: VecDeque::new(),
                batch: VecDeque::new(),
                phases: HashMap::new(),
                results: HashMap::new(),
                result_order: VecDeque::new(),
                next_id: 0,
                next_seq: 0,
                counters: Counters::default(),
                queue_samples: VecDeque::new(),
                pass_totals: HashMap::new(),
                traces: HashMap::new(),
                trace_order: VecDeque::new(),
                running: HashMap::new(),
                history: VecDeque::new(),
                next_sample_index: 0,
                closing: false,
            }),
            intake_cv: Condvar::new(),
            done_cv: Condvar::new(),
            obs_cv: Condvar::new(),
            config,
            started_ns: trace::now_ns(),
        });
        // The engine-side buffer stays shallow — one slot per worker — so
        // the priority decision happens in the admission queue above,
        // where interactive jobs can still overtake.
        let stream = Arc::new(BatchEngine::with_threads(workers).stream(
            workers,
            |(id, job): WorkItem| {
                let requested = job.spec.trace;
                let tracer = job.tracer.clone();
                let outcome = run_job(&job);
                (id, outcome, requested, tracer)
            },
        ));
        // The helper threads hold only `Inner`/stream Arcs — never the
        // service itself — so dropping the last `MappingService` can
        // still run the shutdown sequence.
        let scheduler = {
            let (inner, stream) = (inner.clone(), stream.clone());
            std::thread::spawn(move || scheduler_loop(&inner, &stream))
        };
        let collector = {
            let (inner, stream) = (inner.clone(), stream.clone());
            std::thread::spawn(move || collector_loop(&inner, &stream))
        };
        let sampler = {
            let inner = inner.clone();
            std::thread::spawn(move || sampler_loop(&inner))
        };
        let watchdog = {
            let inner = inner.clone();
            std::thread::spawn(move || watchdog_loop(&inner))
        };
        MappingService {
            inner,
            stream,
            threads: Mutex::new(vec![scheduler, collector, sampler, watchdog]),
        }
    }

    /// Admits a job without blocking.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::QueueFull`] when the bounded admission queue is at
    /// capacity, [`ErrorCode::ShuttingDown`] after shutdown began. Both
    /// bump the `rejected` counter.
    pub fn submit(&self, spec: JobSpec) -> Result<u64, (ErrorCode, String)> {
        let mut state = self.lock();
        if state.closing {
            state.counters.rejected += 1;
            return Err((
                ErrorCode::ShuttingDown,
                "daemon is shutting down".to_string(),
            ));
        }
        let depth = state.interactive.len() + state.batch.len();
        if depth >= self.inner.config.queue_capacity {
            state.counters.rejected += 1;
            obs::event(
                obs::Level::Warn,
                "intake",
                "admission queue full, job rejected",
                &[
                    ("depth", &depth.to_string()),
                    ("capacity", &self.inner.config.queue_capacity.to_string()),
                ],
            );
            return Err((
                ErrorCode::QueueFull,
                format!(
                    "admission queue full ({} jobs, capacity {})",
                    depth, self.inner.config.queue_capacity
                ),
            ));
        }
        let id = state.next_id;
        state.next_id += 1;
        state.counters.submitted += 1;
        state.phases.insert(id, Phase::Queued);
        let admitted_ns = trace::now_ns();
        let job = AdmittedJob {
            id,
            spec,
            admitted_ns,
            tracer: trace::Tracer::new(trace_id_for(id, admitted_ns), TRACE_SPAN_CAPACITY),
        };
        match job.spec.priority {
            Priority::Interactive => state.interactive.push_back(job),
            Priority::Batch => state.batch.push_back(job),
        }
        drop(state);
        self.inner.intake_cv.notify_all();
        Ok(id)
    }

    /// Looks up a job's current phase or stored outcome.
    pub fn poll(&self, id: u64) -> PollReply {
        let state = self.lock();
        match state.phases.get(&id) {
            None => PollReply::Unknown,
            Some(Phase::Queued) => PollReply::Pending { running: false },
            Some(Phase::Running) => PollReply::Pending { running: true },
            Some(Phase::Done) => match state.results.get(&id) {
                Some(outcome) => PollReply::Finished(outcome.clone()),
                None => PollReply::Unknown, // evicted from the bounded store
            },
        }
    }

    /// Blocks until job `id` finishes (returning its outcome) or the
    /// timeout elapses (`None`). Unknown IDs return `None` immediately.
    pub fn wait(&self, id: u64, timeout: Duration) -> Option<JobOutcome> {
        let deadline = Instant::now() + timeout;
        let mut state = self.lock();
        loop {
            match state.phases.get(&id) {
                None => return None,
                Some(Phase::Done) => return state.results.get(&id).cloned(),
                Some(_) => {}
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return None;
            }
            let (guard, _) = self
                .inner
                .done_cv
                .wait_timeout(state, left)
                .expect("service state poisoned");
            state = guard;
        }
    }

    /// Current daemon counters, including the process-wide shared-cache
    /// hit/miss totals that make cross-request amortization observable.
    pub fn stats(&self) -> StatsBody {
        stats_of(&self.inner)
    }

    /// Everything [`MappingService::stats`] reports plus queue-delay
    /// percentiles over the recent completion window and per-pass timing
    /// aggregates — the scrape-oriented superset behind the `metrics`
    /// request.
    pub fn metrics(&self) -> MetricsBody {
        metrics_of(&self.inner)
    }

    /// The sampler thread's bounded window of metrics snapshots plus
    /// rates computed over it — the single-shard body behind the
    /// `metrics-history` request (the router stacks one series per
    /// shard; a lone daemon reports itself as shard 0).
    pub fn history(&self) -> HistoryBody {
        let samples: Vec<SampleBody> = self.lock().history.iter().cloned().collect();
        let rates = RatesBody::over(&samples);
        let sample_seconds = self.inner.config.obs_sample_seconds;
        HistoryBody {
            sample_seconds: if sample_seconds.is_finite() {
                sample_seconds.max(0.0)
            } else {
                0.0
            },
            series: vec![SeriesBody {
                shard: 0,
                samples,
                rates,
            }],
        }
    }

    /// The retained span tree for job `id` as `(trace_id, spans)`, if the
    /// submit requested tracing or the job tripped the slow-job policy
    /// (and the bounded trace store has not evicted it since).
    pub fn trace(&self, id: u64) -> Option<(String, Vec<trace::Span>)> {
        self.lock().traces.get(&id).cloned()
    }

    /// Jobs admitted but not yet finished (queued + running).
    pub fn pending(&self) -> u64 {
        let state = self.lock();
        state
            .phases
            .values()
            .filter(|p| !matches!(p, Phase::Done))
            .count() as u64
    }

    /// Closes intake: subsequent submissions are rejected with
    /// [`ErrorCode::ShuttingDown`] while already-admitted jobs keep
    /// draining. Idempotent.
    pub fn begin_shutdown(&self) {
        self.lock().closing = true;
        self.inner.intake_cv.notify_all();
        self.inner.done_cv.notify_all();
        self.inner.obs_cv.notify_all();
    }

    /// Graceful shutdown: closes intake, waits for every admitted job to
    /// finish, joins all threads, and returns the final counters.
    /// Idempotent (a second call returns the counters again).
    pub fn shutdown(&self) -> StatsBody {
        self.begin_shutdown();
        // Wait for the backlog: every tracked job reaches `Done`.
        {
            let mut state = self.lock();
            while state.phases.values().any(|p| !matches!(p, Phase::Done)) {
                state = self
                    .inner
                    .done_cv
                    .wait(state)
                    .expect("service state poisoned");
            }
        }
        // The scheduler exits once closing && queues empty; the stream
        // closes after it so no submit can race, and the collector exits
        // when the closed stream reports end-of-results.
        let threads: Vec<JoinHandle<()>> = {
            let mut threads = self.threads.lock().expect("service threads poisoned");
            threads.drain(..).collect()
        };
        self.stream.close();
        for handle in threads {
            let _ = handle.join();
        }
        self.stats()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ServiceState> {
        self.inner.state.lock().expect("service state poisoned")
    }
}

/// Pops interactive-before-batch until shutdown empties both queues.
fn scheduler_loop(inner: &Inner, stream: &StreamEngine<WorkItem, WorkOutput>) {
    loop {
        let job = {
            let mut state = inner.state.lock().expect("service state poisoned");
            loop {
                if let Some(job) = {
                    let next = state.interactive.pop_front();
                    next.or_else(|| state.batch.pop_front())
                } {
                    state.phases.insert(job.id, Phase::Running);
                    // Register with the stall watchdog at dispatch; the
                    // collector deregisters on completion. "Running"
                    // here includes time in the engine's shallow buffer
                    // — from the submitter's view that is in flight.
                    state.running.insert(
                        job.id,
                        RunningInfo {
                            tracer: job.tracer.clone(),
                            admitted_ns: job.admitted_ns,
                            mapper: job.spec.mapper.name().to_string(),
                            backend: job.spec.device.name().to_string(),
                            stalled: false,
                        },
                    );
                    break job;
                }
                if state.closing {
                    return;
                }
                state = inner.intake_cv.wait(state).expect("service state poisoned");
            }
        };
        // The engine queue is shallow; block here (not in submit) when
        // the workers are saturated. `Closed` should be unreachable —
        // every shutdown path closes the stream only after joining this
        // thread — but if it ever happens, the popped job must still
        // reach `Done`, or the shutdown drain would wait on it forever.
        let id = job.id;
        // Install the job's tracing context for the hand-off: the engine
        // captures it at submit and re-installs it on whichever worker
        // picks the job up, so worker-side spans parent on the job root.
        let ctx = trace::Ctx::new(job.tracer.clone(), trace::ROOT_SPAN);
        let _trace_ctx = trace::set_ctx(&ctx);
        if stream.submit_blocking((id, Box::new(job))).is_err() {
            let mut state = inner.state.lock().expect("service state poisoned");
            state.counters.failed += 1;
            state.running.remove(&id);
            state.results.insert(
                id,
                JobOutcome::Failed("service stopped before the job could run".to_string()),
            );
            state.result_order.push_back(id);
            state.phases.insert(id, Phase::Done);
            drop(state);
            inner.done_cv.notify_all();
            return;
        }
    }
}

/// Drains finished jobs into the bounded result store.
fn collector_loop(inner: &Inner, stream: &StreamEngine<WorkItem, WorkOutput>) {
    while let Some((_, (id, outcome, trace_requested, tracer))) = stream.recv() {
        let dropped_spans = tracer.dropped();
        if dropped_spans > 0 {
            obs::event(
                obs::Level::Warn,
                "trace",
                "span sink overflowed, spans dropped",
                &[
                    ("job", &id.to_string()),
                    ("dropped", &dropped_spans.to_string()),
                ],
            );
        }
        let mut state = inner.state.lock().expect("service state poisoned");
        state.running.remove(&id);
        let seq = state.next_seq;
        state.next_seq += 1;
        let outcome = match outcome {
            JobOutcome::Done(mut summary) => {
                summary.seq = seq;
                state.counters.completed += 1;
                if state.queue_samples.len() >= QUEUE_SAMPLE_WINDOW {
                    state.queue_samples.pop_front();
                }
                state.queue_samples.push_back(summary.queue_seconds);
                for (label, secs) in &summary.pass_seconds {
                    let entry = state.pass_totals.entry(label.clone()).or_insert((0, 0.0));
                    entry.0 += 1;
                    entry.1 += secs;
                }
                JobOutcome::Done(summary)
            }
            failed => {
                state.counters.failed += 1;
                failed
            }
        };
        // Retention policy: keep the span tree when the submit asked for
        // it, or when the job ran long enough that someone will want to
        // know why — even without having asked in advance.
        let slow =
            matches!(&outcome, JobOutcome::Done(s) if s.seconds > inner.config.trace_slow_seconds);
        if (trace_requested || slow) && inner.config.traces_capacity > 0 {
            if state.trace_order.len() >= inner.config.traces_capacity {
                if let Some(evicted) = state.trace_order.pop_front() {
                    state.traces.remove(&evicted);
                }
            }
            let trace_id = format!("{:016x}", tracer.trace_id());
            // The watchdog may already hold a flight record under this
            // ID; replacing it must not double-enter the FIFO order.
            if state
                .traces
                .insert(id, (trace_id, tracer.snapshot()))
                .is_none()
            {
                state.trace_order.push_back(id);
            }
        }
        if state.result_order.len() >= inner.config.results_capacity {
            if let Some(evicted) = state.result_order.pop_front() {
                state.results.remove(&evicted);
                state.phases.remove(&evicted);
            }
        }
        state.results.insert(id, outcome);
        state.result_order.push_back(id);
        state.phases.insert(id, Phase::Done);
        drop(state);
        inner.done_cv.notify_all();
    }
}

/// [`MappingService::stats`] as a free function over `Inner`, so the
/// sampler thread (which holds only an `Inner` Arc) can snapshot it.
fn stats_of(inner: &Inner) -> StatsBody {
    let state = inner.state.lock().expect("service state poisoned");
    let (distance_hits, distance_misses) = topology::shared_distance_stats();
    let (closure_hits, closure_misses) = presburger::closure_memo_stats();
    let (weighted_hits, weighted_misses) = topology::weighted_distance_stats();
    let (subroute_hits, subroute_misses) = hier::subroute_memo_stats();
    let plan = hier::plan_store_stats();
    StatsBody {
        protocol: PROTOCOL_VERSION,
        workers: inner.config.workers.max(1) as u64,
        queue_depth: (state.interactive.len() + state.batch.len()) as u64,
        submitted: state.counters.submitted,
        completed: state.counters.completed,
        rejected: state.counters.rejected,
        failed: state.counters.failed,
        distance_hits,
        distance_misses,
        closure_hits,
        closure_misses,
        weighted_hits,
        weighted_misses,
        subroute_hits,
        subroute_misses,
        plan_exact_hits: plan.exact_hits,
        plan_canonical_hits: plan.canonical_hits,
        plan_disk_hits: plan.disk_hits,
        plan_disk_writes: plan.disk_writes,
    }
}

/// [`MappingService::metrics`] as a free function over `Inner` — the
/// same body serves synchronous `metrics` requests and the sampler
/// thread's periodic history snapshots.
fn metrics_of(inner: &Inner) -> MetricsBody {
    let stats = stats_of(inner);
    let state = inner.state.lock().expect("service state poisoned");
    let samples: Vec<f64> = state.queue_samples.iter().copied().collect();
    let jobs_inflight = state
        .phases
        .values()
        .filter(|p| !matches!(p, Phase::Done))
        .count() as u64;
    let mut passes: Vec<(String, u64, f64)> = state
        .pass_totals
        .iter()
        .map(|(label, &(runs, total))| (label.clone(), runs, total))
        .collect();
    drop(state);
    passes.sort_by(|a, b| a.0.cmp(&b.0));
    let mut sorted = samples.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("queue delays are finite"));
    MetricsBody {
        stats,
        queue_p50: nearest_rank(&sorted, 0.50),
        queue_p90: nearest_rank(&sorted, 0.90),
        queue_p99: nearest_rank(&sorted, 0.99),
        queue_max: sorted.last().copied().unwrap_or(0.0),
        queue_samples: samples.len() as u64,
        uptime_seconds: trace::now_ns().saturating_sub(inner.started_ns) as f64 * 1e-9,
        jobs_inflight,
        events_dropped: obs::dropped_total(),
        trace_drops: trace::drops_total(),
        passes,
    }
}

/// Parks on `obs_cv` for `timeout`, returning `false` once the service
/// is closing (shared by the sampler and watchdog interval waits).
fn obs_wait(inner: &Inner, timeout: Duration) -> bool {
    let deadline = Instant::now() + timeout;
    let mut state = inner.state.lock().expect("service state poisoned");
    loop {
        if state.closing {
            return false;
        }
        let now = Instant::now();
        if now >= deadline {
            return true;
        }
        let (guard, _) = inner
            .obs_cv
            .wait_timeout(state, deadline - now)
            .expect("service state poisoned");
        state = guard;
    }
}

/// Snapshots the full metrics body into the bounded history ring every
/// `obs_sample_seconds` (plus one immediate baseline sample, so rates
/// have a left edge as soon as the first interval elapses).
fn sampler_loop(inner: &Inner) {
    let interval = inner.config.obs_sample_seconds;
    if interval <= 0.0 || !interval.is_finite() {
        return;
    }
    let interval = Duration::from_secs_f64(interval);
    loop {
        let metrics = metrics_of(inner);
        let mut state = inner.state.lock().expect("service state poisoned");
        if state.closing {
            return;
        }
        let index = state.next_sample_index;
        state.next_sample_index += 1;
        if state.history.len() >= HISTORY_CAPACITY {
            state.history.pop_front();
        }
        let sample = SampleBody::from_metrics(index, &metrics);
        state.history.push_back(sample);
        drop(state);
        if !obs_wait(inner, interval) {
            return;
        }
    }
}

/// Flags in-flight jobs that exceed `stall_after_seconds`: emits a
/// `warn` journal event and captures a flight record — the job's
/// partial span tree, a synthesized in-flight root, and a
/// `watchdog:stall` span carrying the journal tail — into the bounded
/// trace store, retrievable over the wire like any retained trace.
fn watchdog_loop(inner: &Inner) {
    let stall_after = inner.config.stall_after_seconds;
    if stall_after < 0.0 || !stall_after.is_finite() {
        return;
    }
    // Tick a quarter of the threshold (clamped to 50ms..1s) so a stall
    // is flagged within ~1.25x the configured patience.
    let tick = Duration::from_secs_f64((stall_after / 4.0).clamp(0.05, 1.0));
    let stall_ns = (stall_after * 1e9) as u64;
    loop {
        if !obs_wait(inner, tick) {
            return;
        }
        let now_ns = trace::now_ns();
        let mut state = inner.state.lock().expect("service state poisoned");
        // Collect first, flag under the same lock, then report after
        // releasing it: event emission and snapshotting take other locks.
        let mut flagged: Vec<(u64, Arc<trace::Tracer>, u64, String, String)> = Vec::new();
        for (&id, info) in state.running.iter_mut() {
            if !info.stalled && now_ns.saturating_sub(info.admitted_ns) >= stall_ns {
                info.stalled = true;
                flagged.push((
                    id,
                    info.tracer.clone(),
                    info.admitted_ns,
                    info.mapper.clone(),
                    info.backend.clone(),
                ));
            }
        }
        drop(state);
        for (id, tracer, admitted_ns, mapper, backend) in flagged {
            let running_seconds = now_ns.saturating_sub(admitted_ns) as f64 * 1e-9;
            obs::event(
                obs::Level::Warn,
                "watchdog",
                "job stalled in flight",
                &[
                    ("job", &id.to_string()),
                    ("mapper", &mapper),
                    ("backend", &backend),
                    ("running_seconds", &format!("{running_seconds:.3}")),
                    ("stall_after", &format!("{stall_after:.3}")),
                ],
            );
            let spans = flight_record(&tracer, admitted_ns, now_ns, &mapper, &backend);
            let trace_id = format!("{:016x}", tracer.trace_id());
            let mut state = inner.state.lock().expect("service state poisoned");
            if inner.config.traces_capacity == 0 {
                continue;
            }
            if state.trace_order.len() >= inner.config.traces_capacity {
                if let Some(evicted) = state.trace_order.pop_front() {
                    state.traces.remove(&evicted);
                }
            }
            // The collector guards the same way: whichever of the two
            // stores second replaces the entry without re-entering the
            // eviction order.
            if state.traces.insert(id, (trace_id, spans)).is_none() {
                state.trace_order.push_back(id);
            }
        }
    }
}

/// Builds a stalled job's flight record: the tracer's partial spans plus
/// a synthesized root (the real one is only finished at completion —
/// without it [`crate::proto::SpanNode::from_spans`] has no tree to
/// hang) and a `watchdog:stall` marker span whose notes carry the last
/// [`FLIGHT_RECORD_EVENTS`] journal events, age-stamped.
fn flight_record(
    tracer: &trace::Tracer,
    admitted_ns: u64,
    now_ns: u64,
    mapper: &str,
    backend: &str,
) -> Vec<trace::Span> {
    let mut spans = tracer.snapshot();
    if !spans.iter().any(|s| s.id == trace::ROOT_SPAN) {
        spans.push(trace::Span {
            id: trace::ROOT_SPAN,
            parent: 0,
            name: "job".to_string(),
            start_ns: admitted_ns,
            end_ns: now_ns,
            notes: vec![
                ("mapper".to_string(), mapper.to_string()),
                ("backend".to_string(), backend.to_string()),
                ("stalled".to_string(), "true".to_string()),
            ],
        });
    }
    let obs_now = obs::now_ns();
    let mut notes = vec![(
        "running_seconds".to_string(),
        format!("{:.3}", now_ns.saturating_sub(admitted_ns) as f64 * 1e-9),
    )];
    for (slot, event) in obs::recent(FLIGHT_RECORD_EVENTS).iter().enumerate() {
        let age = obs_now.saturating_sub(event.at_ns) as f64 * 1e-9;
        notes.push((
            format!("journal[{slot}]"),
            format!(
                "-{age:.3}s {} {}: {}",
                event.level, event.subsystem, event.message
            ),
        ));
    }
    spans.push(trace::Span {
        id: STALL_SPAN,
        parent: trace::ROOT_SPAN,
        name: "watchdog:stall".to_string(),
        start_ns: now_ns,
        end_ns: now_ns,
        notes,
    });
    spans
}

/// Nearest-rank percentile over an ascending-sorted slice: the value at
/// rank `ceil(q * n)` (1-based), the classic scraper definition. Empty
/// input reports `0.0` (no completions yet, nothing to claim).
fn nearest_rank(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let n = sorted.len();
    let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
    sorted[rank - 1]
}

impl Drop for MappingService {
    fn drop(&mut self) {
        // The drain-on-drop guarantee: a plain drop runs the same
        // graceful shutdown as `shutdown()` (idempotent if it already
        // ran), so admitted jobs are never lost. The one exception is an
        // unwinding drop: waiting on possibly-poisoned condvars there
        // risks a double panic, so teardown is best-effort instead.
        if !std::thread::panicking() {
            self.shutdown();
            return;
        }
        if let Ok(mut state) = self.inner.state.lock() {
            state.closing = true;
        }
        self.inner.intake_cv.notify_all();
        self.inner.done_cv.notify_all();
        self.inner.obs_cv.notify_all();
        self.stream.close();
        let mut threads = match self.threads.lock() {
            Ok(threads) => threads,
            Err(poisoned) => poisoned.into_inner(),
        };
        for handle in threads.drain(..) {
            let _ = handle.join();
        }
    }
}

/// FNV-1a fingerprint of a full mapping result: routed gates (kind,
/// operands, parameter bits), both layouts, and the SWAP count. Two
/// results fingerprint equally iff they are bit-for-bit the same mapping,
/// which is how service responses pin the engine determinism contract
/// without shipping the routed circuit.
pub fn result_fingerprint(result: &MappingResult) -> u64 {
    struct Fnv(u64);
    impl Fnv {
        fn bytes(&mut self, bytes: &[u8]) {
            for &byte in bytes {
                self.0 ^= u64::from(byte);
                self.0 = self.0.wrapping_mul(0x100000001b3);
            }
        }
        fn word(&mut self, x: u64) {
            self.bytes(&x.to_le_bytes());
        }
    }
    let mut fnv = Fnv(0xcbf29ce484222325);
    fnv.word(result.routed.n_qubits() as u64);
    for gate in result.routed.gates() {
        fnv.bytes(gate.kind.name().as_bytes());
        fnv.word(gate.qubits.len() as u64);
        for &q in &gate.qubits {
            fnv.word(u64::from(q));
        }
        for &p in &gate.params {
            fnv.word(p.to_bits());
        }
    }
    for layout in [&result.initial_layout, &result.final_layout] {
        fnv.word(layout.len() as u64);
        for &p in layout.iter() {
            fnv.word(u64::from(p));
        }
    }
    fnv.word(result.swaps as u64);
    fnv.0
}

/// FNV-1a over the job ID and its admission stamp: a per-job trace
/// identity unique enough to correlate a router's wrapper span with the
/// shard-side tree it stitched around.
fn trace_id_for(id: u64, admitted_ns: u64) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for word in [id, admitted_ns] {
        for byte in word.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

/// Runs one admitted job to a stored outcome, bracketing it in the job's
/// span tree: the queue-wait child is recorded retroactively from the
/// admission stamp, and the reserved root span is finished last so it
/// covers admission through completion.
fn run_job(job: &AdmittedJob) -> JobOutcome {
    let pickup_ns = trace::now_ns();
    // Same two stamps as the queue-wait span: the metrics percentile ring
    // and the span tree agree bit-for-bit on every queue delay.
    let queue_seconds = pickup_ns.saturating_sub(job.admitted_ns) as f64 * 1e-9;
    job.tracer
        .record_root_child("intake:queue-wait", job.admitted_ns, pickup_ns, Vec::new());
    let outcome = execute_job(job, queue_seconds);
    let mut notes = vec![("mapper".to_string(), job.spec.mapper.name().to_string())];
    if matches!(outcome, JobOutcome::Failed(_)) {
        notes.push(("outcome".to_string(), "failed".to_string()));
    }
    let dropped = job.tracer.dropped();
    if dropped > 0 {
        notes.push(("dropped_spans".to_string(), dropped.to_string()));
    }
    job.tracer
        .finish_root("job", job.admitted_ns, trace::now_ns(), notes);
    outcome
}

/// The mapping work itself. Total: mapper errors and verification
/// failures become [`JobOutcome::Failed`], never a panic that would take
/// a daemon worker down.
fn execute_job(job: &AdmittedJob, queue_seconds: f64) -> JobOutcome {
    let spec = &job.spec;
    let t0 = Instant::now();
    let (result, pipeline, passes, metrics) = match spec.mapper.pipeline() {
        Some(mut pipeline) => {
            if let Some(noise) = &spec.noise {
                pipeline = pipeline.with_post(FidelityPass::new(noise.clone()));
            }
            match pipeline.run(&spec.circuit, &spec.device) {
                Ok(outcome) => {
                    let passes: Vec<(String, f64)> = outcome
                        .timings
                        .iter()
                        .map(|t| (t.label(), t.seconds))
                        .collect();
                    (outcome.result, pipeline.describe(), passes, outcome.metrics)
                }
                Err(e) => return JobOutcome::Failed(format!("pipeline failed: {e}")),
            }
        }
        None => {
            // Opaque mappers bypass the pipeline; fidelity is still
            // honored directly.
            let result = spec.mapper.map(&spec.circuit, &spec.device);
            let metrics = match &spec.noise {
                Some(noise) => {
                    let p = FidelityPass::new(noise.clone()).probability(&result.routed);
                    vec![(
                        "success_ppm".to_string(),
                        (p * FidelityPass::PPM).round() as i64,
                    )]
                }
                None => Vec::new(),
            };
            (result, String::new(), Vec::new(), metrics)
        }
    };
    let seconds = t0.elapsed().as_secs_f64();
    if let Err(e) = verify_routing(
        &spec.circuit,
        &result.routed,
        &|a, b| spec.device.is_adjacent(a, b),
        &result.initial_layout,
    ) {
        return JobOutcome::Failed(format!(
            "{} produced an invalid routing: {e}",
            spec.mapper.name()
        ));
    }
    let success_ppm = metrics
        .iter()
        .find(|(k, _)| k == "success_ppm")
        .map(|&(_, v)| v);
    JobOutcome::Done(Summary {
        swaps: result.swaps as u64,
        depth: result.routed.depth() as u64,
        qops: result.routed.qop_count() as u64,
        initial_layout: result.initial_layout.clone(),
        final_layout: result.final_layout.clone(),
        fingerprint: format!("{:016x}", result_fingerprint(&result)),
        pipeline,
        pass_seconds: passes,
        seconds,
        queue_seconds,
        seq: 0, // stamped by the collector in completion order
        verified: true,
        success_ppm,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry;
    use qlosure::QlosureMapper;
    use topology::backends;

    fn spec(priority: Priority, depth: usize, seed: u64) -> JobSpec {
        let device = Arc::new(backends::aspen16());
        let bench = queko::QuekoSpec::new(&device, depth).seed(seed).generate();
        JobSpec {
            circuit: Arc::new(bench.circuit),
            device,
            mapper: Arc::new(QlosureMapper::default()),
            priority,
            noise: None,
            trace: false,
        }
    }

    fn service(workers: usize, queue: usize, results: usize) -> MappingService {
        MappingService::start(ServiceConfig {
            workers,
            queue_capacity: queue,
            results_capacity: results,
            ..ServiceConfig::default()
        })
    }

    #[test]
    fn submit_wait_poll_roundtrip() {
        let svc = service(2, 16, 16);
        let id = svc.submit(spec(Priority::Interactive, 10, 1)).unwrap();
        let outcome = svc.wait(id, Duration::from_secs(60)).expect("finishes");
        let JobOutcome::Done(summary) = outcome else {
            panic!("mapping must succeed");
        };
        assert!(summary.verified);
        assert_eq!(summary.pipeline, "weights → identity → qlosure");
        assert_eq!(summary.initial_layout.len(), 16);
        assert!(summary.queue_seconds >= 0.0);
        assert!(matches!(svc.poll(id), PollReply::Finished(_)));
        assert!(matches!(svc.poll(id + 999), PollReply::Unknown));
        let stats = svc.shutdown();
        assert_eq!(stats.submitted, 1);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.failed, 0);
    }

    #[test]
    fn interactive_overtakes_queued_batch_jobs() {
        // One worker; a slow batch job occupies it while more batch jobs
        // and one interactive job queue up. The interactive job must
        // complete before the batch jobs that were admitted *earlier*
        // (modulo the one batch job the scheduler may already have staged
        // into the engine's single-slot buffer).
        let svc = service(1, 32, 32);
        let slow = svc.submit(spec(Priority::Batch, 120, 2)).unwrap();
        let batch: Vec<u64> = (0..4)
            .map(|s| svc.submit(spec(Priority::Batch, 10, 3 + s)).unwrap())
            .collect();
        let interactive = svc.submit(spec(Priority::Interactive, 10, 99)).unwrap();
        let seq_of = |id: u64| -> u64 {
            match svc.wait(id, Duration::from_secs(120)).expect("finishes") {
                JobOutcome::Done(summary) => summary.seq,
                JobOutcome::Failed(e) => panic!("job {id} failed: {e}"),
            }
        };
        let interactive_seq = seq_of(interactive);
        let last_batch_seq = seq_of(*batch.last().unwrap());
        assert!(
            interactive_seq < last_batch_seq,
            "interactive (seq {interactive_seq}) must overtake queued batch \
             work (last batch seq {last_batch_seq})"
        );
        let _ = seq_of(slow);
        svc.shutdown();
    }

    #[test]
    fn full_admission_queue_rejects_with_typed_error() {
        // Zero-capacity queue: nothing can be admitted.
        let svc = service(1, 0, 8);
        let err = svc.submit(spec(Priority::Batch, 10, 1)).unwrap_err();
        assert_eq!(err.0, ErrorCode::QueueFull);
        let stats = svc.shutdown();
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.submitted, 0);
    }

    #[test]
    fn shutdown_drains_already_admitted_jobs() {
        let svc = service(1, 32, 32);
        let ids: Vec<u64> = (0..3)
            .map(|s| svc.submit(spec(Priority::Batch, 20, s)).unwrap())
            .collect();
        svc.begin_shutdown();
        let err = svc.submit(spec(Priority::Batch, 10, 9)).unwrap_err();
        assert_eq!(err.0, ErrorCode::ShuttingDown);
        let stats = svc.shutdown();
        assert_eq!(stats.completed, 3, "queued jobs drain before exit");
        for id in ids {
            assert!(matches!(svc.poll(id), PollReply::Finished(_)));
        }
    }

    #[test]
    fn result_store_is_bounded_fifo() {
        // One worker so completions are sequential; shutdown drains all
        // four jobs (a per-job `wait` would race eviction: an early
        // result may already be evicted by the time it is polled).
        let svc = service(1, 32, 2);
        let ids: Vec<u64> = (0..4)
            .map(|s| svc.submit(spec(Priority::Batch, 10, s)).unwrap())
            .collect();
        let stats = svc.shutdown();
        assert_eq!(stats.completed, 4, "shutdown drains every admitted job");
        let retained = ids
            .iter()
            .filter(|&&id| matches!(svc.poll(id), PollReply::Finished(_)))
            .count();
        assert_eq!(retained, 2, "capacity-2 store keeps exactly two results");
        let evicted = ids
            .iter()
            .filter(|&&id| matches!(svc.poll(id), PollReply::Unknown))
            .count();
        assert_eq!(evicted, 2, "evicted results poll as unknown");
    }

    #[test]
    fn device_too_small_yields_failed_outcome_not_panic() {
        let svc = service(1, 8, 8);
        let device = Arc::new(backends::line(3));
        let id = svc
            .submit(JobSpec {
                circuit: Arc::new(Circuit::new(5)),
                device,
                mapper: Arc::new(QlosureMapper::default()),
                priority: Priority::Interactive,
                noise: None,
                trace: false,
            })
            .unwrap();
        match svc.wait(id, Duration::from_secs(30)).expect("finishes") {
            JobOutcome::Failed(message) => {
                assert!(message.contains("5 qubits"), "got: {message}");
            }
            JobOutcome::Done(_) => panic!("oversized circuit cannot succeed"),
        }
        let stats = svc.shutdown();
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.completed, 0);
    }

    #[test]
    fn fidelity_opt_in_reports_success_ppm() {
        let svc = service(1, 8, 8);
        let device = Arc::new(backends::aspen16());
        let bench = queko::QuekoSpec::new(&device, 10).seed(5).generate();
        let noise = NoiseModel::synthetic(&device, 7e-3, registry::NOISE_SEED);
        let with = svc
            .submit(JobSpec {
                circuit: Arc::new(bench.circuit.clone()),
                device: device.clone(),
                mapper: Arc::new(QlosureMapper::default()),
                priority: Priority::Interactive,
                noise: Some(noise),
                trace: false,
            })
            .unwrap();
        let without = svc
            .submit(JobSpec {
                circuit: Arc::new(bench.circuit),
                device,
                mapper: Arc::new(QlosureMapper::default()),
                priority: Priority::Interactive,
                noise: None,
                trace: false,
            })
            .unwrap();
        let summary = |id: u64| match svc.wait(id, Duration::from_secs(60)).expect("finishes") {
            JobOutcome::Done(s) => s,
            JobOutcome::Failed(e) => panic!("job failed: {e}"),
        };
        let s_with = summary(with);
        let ppm = s_with.success_ppm.expect("opt-in must report");
        assert!((1..=1_000_000).contains(&ppm), "got {ppm}");
        assert!(s_with.pipeline.ends_with("fidelity"));
        assert_eq!(summary(without).success_ppm, None);
        svc.shutdown();
    }

    #[test]
    fn metrics_reports_queue_percentiles_and_pass_totals() {
        let svc = service(2, 16, 16);
        let before = svc.metrics();
        assert_eq!(before.queue_samples, 0);
        assert_eq!(before.queue_p50, 0.0, "no completions, nothing to claim");
        assert!(before.passes.is_empty());
        let ids: Vec<u64> = (0..3)
            .map(|s| svc.submit(spec(Priority::Batch, 10, s)).unwrap())
            .collect();
        for id in ids {
            assert!(svc.wait(id, Duration::from_secs(60)).is_some());
        }
        let metrics = svc.metrics();
        assert_eq!(metrics.queue_samples, 3);
        assert!(metrics.queue_p50 <= metrics.queue_p90);
        assert!(metrics.queue_p90 <= metrics.queue_p99);
        assert!(metrics.queue_p99 <= metrics.queue_max);
        // The default pipeline runs weights → identity → qlosure once per
        // job, so every pass label records exactly three runs.
        assert!(!metrics.passes.is_empty());
        for (label, runs, total) in &metrics.passes {
            assert_eq!(*runs, 3, "pass {label} runs once per job");
            assert!(*total >= 0.0);
        }
        let labels: Vec<&str> = metrics.passes.iter().map(|p| p.0.as_str()).collect();
        let mut sorted_labels = labels.clone();
        sorted_labels.sort_unstable();
        assert_eq!(labels, sorted_labels, "passes are label-sorted");
        assert_eq!(metrics.stats.completed, 3);
        assert!(metrics.uptime_seconds > 0.0);
        assert_eq!(metrics.jobs_inflight, 0, "everything already drained");
        svc.shutdown();
    }

    #[test]
    fn requested_traces_span_queue_wait_pickup_and_passes() {
        let svc = service(1, 8, 8);
        let mut traced = spec(Priority::Interactive, 10, 1);
        traced.trace = true;
        let id = svc.submit(traced).unwrap();
        let JobOutcome::Done(summary) = svc.wait(id, Duration::from_secs(60)).expect("finishes")
        else {
            panic!("mapping must succeed");
        };
        let (trace_id, spans) = svc.trace(id).expect("requested trace is retained");
        assert_eq!(trace_id.len(), 16, "16 hex digits: {trace_id}");
        let by_name = |n: &str| spans.iter().find(|s| s.name == n);
        let root = by_name("job").expect("root span");
        assert_eq!(root.id, trace::ROOT_SPAN);
        assert!(root
            .notes
            .contains(&("mapper".to_string(), "qlosure".to_string())));
        let wait = by_name("intake:queue-wait").expect("queue-wait span");
        assert_eq!(wait.parent, trace::ROOT_SPAN);
        // Shared-clock contract: the percentile sample and the span are
        // the same two stamps, so they agree bit-for-bit.
        assert_eq!(
            summary.queue_seconds,
            (wait.end_ns - wait.start_ns) as f64 * 1e-9
        );
        assert!(by_name("engine:pickup").is_some());
        for pass in ["analysis:weights", "layout:identity", "routing:qlosure"] {
            let span = by_name(pass).unwrap_or_else(|| panic!("missing pass span {pass}"));
            assert_eq!(span.parent, trace::ROOT_SPAN);
        }
        // A fast job that did not opt in leaves nothing behind.
        let untraced = svc.submit(spec(Priority::Interactive, 10, 2)).unwrap();
        assert!(svc.wait(untraced, Duration::from_secs(60)).is_some());
        assert!(svc.trace(untraced).is_none());
        svc.shutdown();
    }

    #[test]
    fn slow_jobs_retain_traces_without_opting_in() {
        // Threshold zero makes every completed job "slow".
        let svc = MappingService::start(ServiceConfig {
            workers: 1,
            queue_capacity: 8,
            results_capacity: 8,
            trace_slow_seconds: 0.0,
            traces_capacity: 2,
            ..ServiceConfig::default()
        });
        let ids: Vec<u64> = (0..3)
            .map(|s| svc.submit(spec(Priority::Batch, 10, s)).unwrap())
            .collect();
        svc.shutdown();
        let retained = ids.iter().filter(|&&id| svc.trace(id).is_some()).count();
        assert_eq!(retained, 2, "trace store is bounded FIFO at capacity 2");
        assert!(svc.trace(ids[0]).is_none(), "oldest trace evicted first");
    }

    #[test]
    fn sampler_fills_bounded_history_with_monotone_indexes() {
        let svc = MappingService::start(ServiceConfig {
            workers: 1,
            queue_capacity: 8,
            results_capacity: 8,
            obs_sample_seconds: 0.02,
            ..ServiceConfig::default()
        });
        let id = svc.submit(spec(Priority::Interactive, 10, 1)).unwrap();
        assert!(svc.wait(id, Duration::from_secs(60)).is_some());
        // The sampler takes an immediate baseline, then one per tick.
        let deadline = Instant::now() + Duration::from_secs(30);
        let history = loop {
            let history = svc.history();
            let samples = &history.series[0].samples;
            if samples.len() >= 3 && samples.last().unwrap().completed >= 1 {
                break history;
            }
            assert!(Instant::now() < deadline, "sampler never caught up");
            std::thread::sleep(Duration::from_millis(20));
        };
        assert_eq!(history.series.len(), 1, "a lone daemon is one series");
        assert_eq!(history.series[0].shard, 0);
        let samples = &history.series[0].samples;
        for pair in samples.windows(2) {
            assert_eq!(pair[1].index, pair[0].index + 1, "indexes are monotone");
            assert!(pair[1].uptime_seconds >= pair[0].uptime_seconds);
        }
        assert!(samples.len() <= HISTORY_CAPACITY);
        let rates = &history.series[0].rates;
        assert!(rates.window_seconds > 0.0);
        assert!(rates.jobs_per_second >= 0.0);
        svc.shutdown();
    }

    #[test]
    fn zero_interval_disables_the_sampler() {
        let svc = MappingService::start(ServiceConfig {
            workers: 1,
            queue_capacity: 8,
            results_capacity: 8,
            obs_sample_seconds: 0.0,
            ..ServiceConfig::default()
        });
        std::thread::sleep(Duration::from_millis(50));
        let history = svc.history();
        assert!(history.series[0].samples.is_empty());
        assert_eq!(history.sample_seconds, 0.0);
        svc.shutdown();
    }

    #[test]
    fn watchdog_flags_stalled_jobs_with_a_flight_record() {
        // Zero patience: any watchdog tick (every 50ms at this setting)
        // flags whatever is in flight. The workload must outlast at
        // least one tick, so: a dense deep QUEKO on the king graph (the
        // slowest routing target in the roster per unit of depth), not
        // the breezy aspen16 the other tests use. It is not traced, and
        // the slow-job threshold is out of reach — so a retained trace
        // can only be the watchdog's flight record.
        let svc = MappingService::start(ServiceConfig {
            workers: 1,
            queue_capacity: 8,
            results_capacity: 8,
            trace_slow_seconds: 1e9,
            traces_capacity: 4,
            stall_after_seconds: 0.0,
            ..ServiceConfig::default()
        });
        let device = Arc::new(backends::by_name("king9").expect("king9 resolves"));
        let bench = queko::QuekoSpec::new(&device, 400).seed(7).generate();
        let id = svc
            .submit(JobSpec {
                circuit: Arc::new(bench.circuit),
                device,
                mapper: Arc::new(QlosureMapper::default()),
                priority: Priority::Batch,
                noise: None,
                trace: false,
            })
            .unwrap();
        let deadline = Instant::now() + Duration::from_secs(60);
        let (_, spans) = loop {
            if let Some(record) = svc.trace(id) {
                break record;
            }
            assert!(
                Instant::now() < deadline,
                "watchdog never captured a flight record"
            );
            std::thread::sleep(Duration::from_millis(10));
        };
        let stall = spans
            .iter()
            .find(|s| s.name == "watchdog:stall")
            .expect("flight record carries the stall marker span");
        assert_eq!(stall.parent, trace::ROOT_SPAN);
        assert!(stall.notes.iter().any(|(k, _)| k == "running_seconds"));
        let root = spans
            .iter()
            .find(|s| s.id == trace::ROOT_SPAN)
            .expect("synthesized in-flight root");
        assert!(root.end_ns >= root.start_ns);
        assert!(svc.wait(id, Duration::from_secs(120)).is_some());
        svc.shutdown();
    }

    #[test]
    fn nearest_rank_is_the_classic_definition() {
        assert_eq!(nearest_rank(&[], 0.5), 0.0);
        let one = [7.0];
        assert_eq!(nearest_rank(&one, 0.5), 7.0);
        assert_eq!(nearest_rank(&one, 0.99), 7.0);
        let four = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(nearest_rank(&four, 0.50), 2.0);
        assert_eq!(nearest_rank(&four, 0.90), 4.0);
        assert_eq!(nearest_rank(&four, 0.25), 1.0);
        let hundred: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(nearest_rank(&hundred, 0.50), 50.0);
        assert_eq!(nearest_rank(&hundred, 0.90), 90.0);
        assert_eq!(nearest_rank(&hundred, 0.99), 99.0);
    }

    #[test]
    fn fingerprint_distinguishes_results() {
        let device = backends::line(4);
        let mut a = Circuit::new(4);
        a.cx(0, 3);
        let ra = QlosureMapper::default().map(&a, &device);
        let rb = QlosureMapper::default().map(&a, &device);
        assert_eq!(
            result_fingerprint(&ra),
            result_fingerprint(&rb),
            "deterministic mapper, equal fingerprints"
        );
        let mut c = Circuit::new(4);
        c.cx(0, 2);
        let rc = QlosureMapper::default().map(&c, &device);
        assert_ne!(result_fingerprint(&ra), result_fingerprint(&rc));
    }
}
