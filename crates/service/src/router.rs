//! `qlosure-router`: a balancer fronting N `qlosured` shards.
//!
//! The whole point of the serving tier is memo hit rates: every shard's
//! distance, weighted-distance, closure and subroute caches are
//! per-process and bounded, so a fleet wins only if the same device keeps
//! landing on the same shard. The router therefore routes each submit by
//! the **FNV content-key of its backend name** ([`content_shard`]) — a
//! pure function of the request, no routing table, no coordination —
//! so shard `k` sees exactly the devices that hash to `k` and its caches
//! stay hot for them.
//!
//! Everything else is pass-through with two twists:
//!
//! * **Job IDs are remapped statelessly.** Shard `s` of `n` assigning
//!   local ID `j` becomes router ID `j * n + s`; a later `poll` inverts
//!   the arithmetic (`s = id % n`, `j = id / n`) and lands on the right
//!   shard without the router remembering anything.
//! * **Shard errors stay typed.** A daemon's own error frames pass
//!   through unchanged; a shard the router cannot reach (after one
//!   reconnect attempt) answers with
//!   [`ErrorCode::ShardUnavailable`](crate::proto::ErrorCode) rather
//!   than a dropped connection.
//!
//! `stats` and `metrics` fan out to every shard and aggregate: counters
//! and per-pass timings sum; queue-delay percentiles take the per-shard
//! **max** (conservative — "no shard is slower than this").
//! `metrics-history` stacks one relabeled series per shard (no merging —
//! a dashboard wants them apart); `events` merges every shard's journal
//! with the router's own, sequence numbers remapped over `shards + 1`
//! streams. `shutdown` fans out, then stops the router itself.

use crate::client::{Client, ClientError};
use crate::net::{self, ConnLimits, Endpoint, FrameEvent, Stream};
use crate::proto::{
    encode_response, parse_request, ErrorCode, HistoryBody, MetricsBody, Request, Response,
    SpanNode, StatsBody, MAX_FRAME, PROTOCOL_VERSION,
};
use std::io::{BufReader, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Where the router listens and which shards it fronts.
#[derive(Clone, Debug)]
pub struct RouterConfig {
    /// The router's own serving endpoint.
    pub listen: Endpoint,
    /// The `qlosured` shards, in shard-index order. The order is part of
    /// the routing function: changing it re-keys every device.
    pub shards: Vec<Endpoint>,
    /// Live client connections beyond this are refused with a typed
    /// `busy` error frame.
    pub max_connections: usize,
    /// Idle deadline per client connection.
    pub read_timeout: Duration,
}

impl RouterConfig {
    /// A router on `listen` fronting `shards` with default limits.
    pub fn fronting(listen: Endpoint, shards: Vec<Endpoint>) -> Self {
        RouterConfig {
            listen,
            shards,
            max_connections: crate::daemon::DEFAULT_MAX_CONNECTIONS,
            read_timeout: crate::daemon::DEFAULT_READ_TIMEOUT,
        }
    }
}

/// A router running on a background thread (tests, benches).
pub struct RouterHandle {
    /// The endpoint the router is actually serving on (TCP port 0
    /// resolved).
    pub endpoint: Endpoint,
    thread: JoinHandle<std::io::Result<()>>,
}

impl RouterHandle {
    /// Waits for the router to exit (after a client sends `shutdown`).
    ///
    /// # Errors
    ///
    /// Propagates the accept loop's I/O errors.
    ///
    /// # Panics
    ///
    /// Panics if the router thread itself panicked.
    pub fn join(self) -> std::io::Result<()> {
        self.thread.join().expect("router thread panicked")
    }
}

/// The shard a content key routes to: FNV-1a of the key, mod `n_shards`.
/// Pure and stable — the same backend name always lands on the same
/// shard, which is what keeps that shard's device caches hot.
#[must_use]
pub fn content_shard(key: &str, n_shards: usize) -> usize {
    let mut hash: u64 = 0xcbf29ce484222325;
    for byte in key.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x100000001b3);
    }
    (hash % n_shards.max(1) as u64) as usize
}

/// Binds the router's endpoint and serves on a background thread.
///
/// # Errors
///
/// An `InvalidInput` error when `shards` is empty; otherwise propagates
/// binding errors (including `AddrInUse` for a live Unix socket).
pub fn spawn(config: RouterConfig) -> std::io::Result<RouterHandle> {
    let listener = bind_checked(&config)?;
    let endpoint = listener.local_endpoint(&config.listen);
    let thread = std::thread::spawn(move || serve(listener, config));
    Ok(RouterHandle { endpoint, thread })
}

/// Binds the router's endpoint and serves on the calling thread until a
/// client requests shutdown. This is `qlosure-router`'s main loop.
///
/// # Errors
///
/// Same as [`spawn`], plus accept-loop I/O errors.
pub fn run(config: RouterConfig) -> std::io::Result<()> {
    let listener = bind_checked(&config)?;
    serve(listener, config)
}

fn bind_checked(config: &RouterConfig) -> std::io::Result<net::Listener> {
    if config.shards.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "a router needs at least one shard",
        ));
    }
    net::bind(&config.listen)
}

fn serve(listener: net::Listener, config: RouterConfig) -> std::io::Result<()> {
    // The router keeps its own journal (shard health, reconnects, idle
    // disconnects) and serves it as one more stream next to its shards'.
    obs::enable();
    probe_shards(&config.shards);
    let shutdown = Arc::new(AtomicBool::new(false));
    let limits = ConnLimits {
        max_connections: config.max_connections.max(1),
        read_timeout: config.read_timeout,
    };
    let handler = {
        let shutdown = shutdown.clone();
        let shards = config.shards.clone();
        let idle = config.read_timeout;
        Arc::new(move |stream: Stream| {
            let _ = handle_connection(&shards, &shutdown, idle, stream);
        })
    };
    let served = net::accept_loop(&listener, &shutdown, limits, handler);
    if let Endpoint::Unix(path) = &config.listen {
        std::fs::remove_file(path).ok();
    }
    served
}

/// Startup health sweep: one stats round trip per shard, reported on
/// stderr. Unreachable shards are not fatal — they may come up later, and
/// until then their keys answer with `shard-unavailable`.
fn probe_shards(shards: &[Endpoint]) {
    for (idx, endpoint) in shards.iter().enumerate() {
        let health = Client::connect_endpoint(endpoint)
            .map_err(ClientError::Io)
            .and_then(|mut client| client.stats());
        match health {
            Ok(stats) => {
                obs::event(
                    obs::Level::Info,
                    "router",
                    "shard healthy at startup",
                    &[
                        ("shard", &idx.to_string()),
                        ("endpoint", &endpoint.to_string()),
                        ("workers", &stats.workers.to_string()),
                    ],
                );
                eprintln!(
                    "qlosure-router: shard {idx} at {endpoint}: healthy \
                     ({} workers, {} queued)",
                    stats.workers, stats.queue_depth
                );
            }
            Err(e) => {
                obs::event(
                    obs::Level::Warn,
                    "router",
                    "shard unreachable at startup",
                    &[
                        ("shard", &idx.to_string()),
                        ("endpoint", &endpoint.to_string()),
                        ("error", &e.to_string()),
                    ],
                );
                eprintln!("qlosure-router: shard {idx} at {endpoint}: unreachable ({e})");
            }
        }
    }
}

/// Per-connection lazy shard connections: opened on first use, reopened
/// once per call after a transport failure (a restarted shard heals
/// transparently), then reported as `shard-unavailable`.
struct ShardPool<'a> {
    endpoints: &'a [Endpoint],
    clients: Vec<Option<Client>>,
}

impl<'a> ShardPool<'a> {
    fn new(endpoints: &'a [Endpoint]) -> Self {
        ShardPool {
            clients: endpoints.iter().map(|_| None).collect(),
            endpoints,
        }
    }

    /// One request round trip to shard `idx`, reconnecting once on a
    /// transport failure. Typed shard errors come back as
    /// `Ok(Response::Error { .. })` — pass-through, not translation.
    fn call(&mut self, idx: usize, request: &Request) -> Response {
        for attempt in 0..2 {
            if self.clients[idx].is_none() {
                match Client::connect_endpoint(&self.endpoints[idx]) {
                    Ok(client) => self.clients[idx] = Some(client),
                    Err(e) => {
                        if attempt == 0 {
                            continue;
                        }
                        return unavailable(idx, &self.endpoints[idx], &e.to_string());
                    }
                }
            }
            let client = self.clients[idx].as_mut().expect("connected above");
            match client.request(request) {
                Ok(response) => return response,
                Err(e) => {
                    // The connection is unusable (EOF, I/O, desync):
                    // drop it; the next attempt reconnects fresh.
                    self.clients[idx] = None;
                    if attempt == 0 {
                        obs::event(
                            obs::Level::Warn,
                            "router",
                            "shard connection lost, reconnecting",
                            &[("shard", &idx.to_string()), ("error", &e.to_string())],
                        );
                        continue;
                    }
                    return unavailable(idx, &self.endpoints[idx], &e.to_string());
                }
            }
        }
        unreachable!("both attempts return")
    }
}

fn unavailable(idx: usize, endpoint: &Endpoint, detail: &str) -> Response {
    obs::event(
        obs::Level::Error,
        "router",
        "shard unavailable",
        &[
            ("shard", &idx.to_string()),
            ("endpoint", &endpoint.to_string()),
            ("error", detail),
        ],
    );
    Response::Error {
        code: ErrorCode::ShardUnavailable,
        message: format!("shard {idx} at {endpoint} is unavailable: {detail}"),
    }
}

fn handle_connection(
    shards: &[Endpoint],
    shutdown: &Arc<AtomicBool>,
    idle_limit: Duration,
    stream: Stream,
) -> std::io::Result<()> {
    let mut pool = ShardPool::new(shards);
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    loop {
        let line = match net::read_frame(&mut reader, shutdown, idle_limit)? {
            FrameEvent::Frame(line) => line,
            FrameEvent::Eof | FrameEvent::Shutdown => return Ok(()),
            FrameEvent::IdleTimeout => {
                obs::event(
                    obs::Level::Info,
                    "net",
                    "idle connection disconnected",
                    &[("idle_seconds", &format!("{:.1}", idle_limit.as_secs_f64()))],
                );
                return Ok(());
            }
            FrameEvent::Oversized(len) => {
                let response = Response::Error {
                    code: ErrorCode::Oversized,
                    message: format!("frame of {len}+ bytes exceeds the {MAX_FRAME}-byte limit"),
                };
                let frame = encode_response(&response).map_err(std::io::Error::other)?;
                writer.write_all(format!("{frame}\n").as_bytes())?;
                return Ok(());
            }
        };
        if line.is_empty() {
            continue;
        }
        let (response, end) = route(&mut pool, shutdown, &line);
        let frame = encode_response(&response).map_err(std::io::Error::other)?;
        writer.write_all(format!("{frame}\n").as_bytes())?;
        writer.flush()?;
        if end {
            return Ok(());
        }
    }
}

/// Decodes one frame and routes it; the flag says whether this frame ends
/// the connection (a shutdown acknowledgement).
fn route(pool: &mut ShardPool<'_>, shutdown: &AtomicBool, line: &str) -> (Response, bool) {
    let request = match parse_request(line) {
        Ok(request) => request,
        Err(e) => {
            return (
                Response::Error {
                    code: e.code(),
                    message: e.to_string(),
                },
                false,
            )
        }
    };
    let n = pool.endpoints.len() as u64;
    match request {
        submit @ Request::Submit { .. } => {
            let Request::Submit { ref backend, .. } = submit else {
                unreachable!("matched above");
            };
            let shard = content_shard(backend, pool.endpoints.len());
            let response = match pool.call(shard, &submit) {
                // Shard-local ID j on shard s becomes router ID j*n + s.
                Response::Submitted { id } => Response::Submitted {
                    id: id * n + shard as u64,
                },
                other => other,
            };
            (response, false)
        }
        Request::Poll { id } => {
            let shard = (id % n) as usize;
            let shard_id = id / n;
            let response = match pool.call(shard, &Request::Poll { id: shard_id }) {
                // Re-map every ID-bearing reply back to router IDs.
                Response::Pending { running, .. } => Response::Pending { id, running },
                Response::Done { summary, .. } => Response::Done { id, summary },
                Response::Failed { message, .. } => Response::Failed { id, message },
                Response::Error { code, message } if code == ErrorCode::UnknownId => {
                    Response::Error {
                        code,
                        message: format!("no job {id} (router view): {message}"),
                    }
                }
                other => other,
            };
            (response, false)
        }
        Request::Trace { id } => {
            let shard = (id % n) as usize;
            let shard_id = id / n;
            let response = match pool.call(shard, &Request::Trace { id: shard_id }) {
                // Stitch: the shard's tree (its trace ID preserved) nests
                // under a router span that records where the job landed,
                // so one `trace` answer shows the whole fleet path.
                Response::Trace { trace_id, root, .. } => {
                    let end_ns = root.end_ns;
                    Response::Trace {
                        id,
                        trace_id,
                        root: SpanNode {
                            name: "router:route".to_string(),
                            start_ns: 0,
                            end_ns,
                            notes: vec![
                                ("shard".to_string(), shard.to_string()),
                                ("shards".to_string(), n.to_string()),
                            ],
                            children: vec![root],
                        },
                    }
                }
                Response::Error { code, message } if code == ErrorCode::UnknownId => {
                    Response::Error {
                        code,
                        message: format!("no trace for job {id} (router view): {message}"),
                    }
                }
                other => other,
            };
            (response, false)
        }
        Request::Stats => (fan_out_stats(pool), false),
        Request::Metrics => (fan_out_metrics(pool), false),
        Request::MetricsHistory => (fan_out_history(pool), false),
        Request::Events {
            min_level,
            after_seq,
        } => (fan_out_events(pool, min_level, after_seq), false),
        Request::Shutdown => {
            // Fan the shutdown out so every shard drains, then stop the
            // router itself; unreachable shards cannot block the fleet.
            let mut pending = 0u64;
            for shard in 0..pool.endpoints.len() {
                if let Response::ShuttingDown { pending: p } = pool.call(shard, &Request::Shutdown)
                {
                    pending += p;
                }
            }
            shutdown.store(true, Ordering::SeqCst);
            (Response::ShuttingDown { pending }, true)
        }
    }
}

/// Sums two stats bodies field-wise (protocol stays the wire version,
/// not a sum).
fn add_stats(total: &mut StatsBody, shard: &StatsBody) {
    total.workers += shard.workers;
    total.queue_depth += shard.queue_depth;
    total.submitted += shard.submitted;
    total.completed += shard.completed;
    total.rejected += shard.rejected;
    total.failed += shard.failed;
    total.distance_hits += shard.distance_hits;
    total.distance_misses += shard.distance_misses;
    total.closure_hits += shard.closure_hits;
    total.closure_misses += shard.closure_misses;
    total.weighted_hits += shard.weighted_hits;
    total.weighted_misses += shard.weighted_misses;
    total.subroute_hits += shard.subroute_hits;
    total.subroute_misses += shard.subroute_misses;
    total.plan_exact_hits += shard.plan_exact_hits;
    total.plan_canonical_hits += shard.plan_canonical_hits;
    total.plan_disk_hits += shard.plan_disk_hits;
    total.plan_disk_writes += shard.plan_disk_writes;
}

fn empty_stats() -> StatsBody {
    StatsBody {
        protocol: PROTOCOL_VERSION,
        workers: 0,
        queue_depth: 0,
        submitted: 0,
        completed: 0,
        rejected: 0,
        failed: 0,
        distance_hits: 0,
        distance_misses: 0,
        closure_hits: 0,
        closure_misses: 0,
        weighted_hits: 0,
        weighted_misses: 0,
        subroute_hits: 0,
        subroute_misses: 0,
        plan_exact_hits: 0,
        plan_canonical_hits: 0,
        plan_disk_hits: 0,
        plan_disk_writes: 0,
    }
}

/// Fleet stats: the field-wise sum over every reachable shard. Any
/// unreachable shard makes the sweep fail typed — a partial sum would
/// silently understate the fleet.
fn fan_out_stats(pool: &mut ShardPool<'_>) -> Response {
    let mut total = empty_stats();
    for shard in 0..pool.endpoints.len() {
        match pool.call(shard, &Request::Stats) {
            Response::Stats(stats) => add_stats(&mut total, &stats),
            Response::Error { code, message } => return Response::Error { code, message },
            other => {
                return Response::Error {
                    code: ErrorCode::ShardUnavailable,
                    message: format!("shard {shard} answered stats with {other:?}"),
                }
            }
        }
    }
    Response::Stats(total)
}

/// Fleet metrics: counters and per-pass timings sum; queue-delay
/// percentiles take the per-shard max (conservative: "no shard is slower
/// than this" — percentiles of different populations cannot be averaged).
fn fan_out_metrics(pool: &mut ShardPool<'_>) -> Response {
    let mut total = MetricsBody {
        stats: empty_stats(),
        queue_p50: 0.0,
        queue_p90: 0.0,
        queue_p99: 0.0,
        queue_max: 0.0,
        queue_samples: 0,
        uptime_seconds: 0.0,
        jobs_inflight: 0,
        events_dropped: obs::dropped_total(),
        trace_drops: 0,
        passes: Vec::new(),
    };
    let mut passes: std::collections::HashMap<String, (u64, f64)> =
        std::collections::HashMap::new();
    for shard in 0..pool.endpoints.len() {
        match pool.call(shard, &Request::Metrics) {
            Response::Metrics(m) => {
                add_stats(&mut total.stats, &m.stats);
                total.queue_p50 = total.queue_p50.max(m.queue_p50);
                total.queue_p90 = total.queue_p90.max(m.queue_p90);
                total.queue_p99 = total.queue_p99.max(m.queue_p99);
                total.queue_max = total.queue_max.max(m.queue_max);
                total.queue_samples += m.queue_samples;
                // Fleet uptime is the oldest shard's (max); in-flight
                // jobs sum like every other load figure.
                total.uptime_seconds = total.uptime_seconds.max(m.uptime_seconds);
                total.jobs_inflight += m.jobs_inflight;
                // Drop counters sum across the fleet; the router's own
                // journal drops were seeded into the total above.
                total.events_dropped += m.events_dropped;
                total.trace_drops += m.trace_drops;
                for (label, runs, secs) in m.passes {
                    let entry = passes.entry(label).or_insert((0, 0.0));
                    entry.0 += runs;
                    entry.1 += secs;
                }
            }
            Response::Error { code, message } => return Response::Error { code, message },
            other => {
                return Response::Error {
                    code: ErrorCode::ShardUnavailable,
                    message: format!("shard {shard} answered metrics with {other:?}"),
                }
            }
        }
    }
    total.passes = passes
        .into_iter()
        .map(|(label, (runs, secs))| (label, runs, secs))
        .collect();
    total.passes.sort_by(|a, b| a.0.cmp(&b.0));
    Response::Metrics(total)
}

/// Fleet metrics history: one series per shard, relabeled with the
/// fleet shard index so a dashboard can tell them apart; per-series
/// samples and rates come back as the shard computed them (sample
/// indexes align series across scrapes). Like `metrics`, an unreachable
/// shard fails the sweep typed rather than understating the fleet.
fn fan_out_history(pool: &mut ShardPool<'_>) -> Response {
    let mut sample_seconds = 0.0f64;
    let mut series = Vec::new();
    for shard in 0..pool.endpoints.len() {
        match pool.call(shard, &Request::MetricsHistory) {
            Response::MetricsHistory(history) => {
                sample_seconds = sample_seconds.max(history.sample_seconds);
                for mut one in history.series {
                    one.shard = shard as u64;
                    series.push(one);
                }
            }
            Response::Error { code, message } => return Response::Error { code, message },
            other => {
                return Response::Error {
                    code: ErrorCode::ShardUnavailable,
                    message: format!("shard {shard} answered metrics-history with {other:?}"),
                }
            }
        }
    }
    Response::MetricsHistory(HistoryBody {
        sample_seconds,
        series,
    })
}

/// Fleet journal: every shard's events plus the router's own, merged
/// oldest-first by age. Sequence numbers are remapped over `n + 1`
/// streams — shard `s` is stream `s`, the router's journal is stream
/// `n` — so `seq * (n + 1) + stream` stays monotone per stream and a
/// client cursor (`after_seq` = highest seq seen) inverts exactly.
/// Unreachable shards are *skipped*, not fatal: the reconnect machinery
/// journals the failure, and that event rides along in this very
/// response via the router's stream.
fn fan_out_events(pool: &mut ShardPool<'_>, min_level: obs::Level, after_seq: u64) -> Response {
    let streams = pool.endpoints.len() as u64 + 1;
    // Stream `stream`'s local cursor: the largest local seq whose remap
    // is <= after_seq (events strictly after it are new to the client).
    let local_after = |stream: u64| {
        if after_seq >= stream {
            (after_seq - stream) / streams
        } else {
            0
        }
    };
    let mut dropped = 0u64;
    let mut events = Vec::new();
    for shard in 0..pool.endpoints.len() {
        let request = Request::Events {
            min_level,
            after_seq: local_after(shard as u64),
        };
        // Anything else (an unreachable shard, say) is skipped — and
        // self-journaled by `unavailable` above, so the gap still shows
        // up in the merged window via the router's own stream.
        if let Response::Events(body) = pool.call(shard, &request) {
            dropped += body.dropped;
            for mut event in body.events {
                event.seq = event.seq * streams + shard as u64;
                events.push(event);
            }
        }
    }
    let own = crate::daemon::journal_window(min_level, local_after(streams - 1));
    dropped += own.dropped;
    for mut event in own.events {
        event.seq = event.seq * streams + (streams - 1);
        events.push(event);
    }
    // Oldest first: ages are durations, comparable across processes
    // that share no absolute clock.
    events.sort_by(|a, b| {
        b.age_seconds
            .partial_cmp(&a.age_seconds)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    Response::Events(crate::proto::EventsBody { dropped, events })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn content_shard_is_stable_and_balanced() {
        // Stability: the same key always lands on the same shard (this
        // is the cache-locality contract — pin the exact values so an
        // accidental hash change cannot slip in as "still balanced").
        assert_eq!(content_shard("aspen16", 2), content_shard("aspen16", 2));
        assert_eq!(content_shard("anything", 1), 0);
        // Balance: a device roster spreads over both shards.
        let (mut a, mut b) = (0usize, 0usize);
        for i in 0..40 {
            match content_shard(&format!("line:{i}"), 2) {
                0 => a += 1,
                _ => b += 1,
            }
        }
        assert!(a >= 8 && b >= 8, "skewed split: {a}/{b}");
    }

    #[test]
    fn job_id_remap_round_trips() {
        // router_id = shard_local_id * n + shard_idx, inverted by % and /.
        for n in [1u64, 2, 3, 7] {
            for shard in 0..n {
                for local in [0u64, 1, 5, 1_000_003] {
                    let router_id = local * n + shard;
                    assert_eq!(router_id % n, shard);
                    assert_eq!(router_id / n, local);
                }
            }
        }
    }

    #[test]
    fn router_refuses_an_empty_shard_list() {
        let listen = Endpoint::Tcp("127.0.0.1:0".to_string());
        let err = match spawn(RouterConfig::fronting(listen, Vec::new())) {
            Err(e) => e,
            Ok(_) => panic!("zero shards cannot serve"),
        };
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    }
}
