//! Transport abstraction: one protocol, two stream families.
//!
//! The NDJSON protocol ([`crate::proto`]) is transport-agnostic — frames
//! are the same bytes whether they cross a Unix domain socket (one box,
//! lowest latency) or TCP (a fleet). This module erases the difference
//! behind three small types:
//!
//! * [`Endpoint`] — where to listen/connect (`unix:/path` or
//!   `tcp:host:port`), with a parseable, printable spelling shared by
//!   every binary's `--listen`/`--socket` flags;
//! * `Listener` / [`Stream`] — enum wrappers over the `std::net` and
//!   `std::os::unix::net` pairs, so the daemon's accept loop and the
//!   client are written once.
//!
//! It also owns the hardened connection plumbing both servers
//! (`qlosured` and `qlosure-router`) share:
//!
//! * `read_frame` — a resumable bounded frame reader that survives
//!   read-timeout wakeups (so a connection thread can observe shutdown),
//!   cuts oversized frames off mid-read, and enforces an idle deadline
//!   (a slowloris client cannot pin an OS thread forever);
//! * `accept_loop` — a polling accept loop with a connection cap
//!   (excess connections are refused with a typed `busy` error frame,
//!   never silently dropped) that **joins every live connection thread**
//!   on graceful shutdown instead of leaking detached threads.

use crate::proto::{encode_response, ErrorCode, Response, MAX_FRAME};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often a blocked connection read wakes up to check the shutdown
/// flag and its idle deadline. Far below human-observable latency, far
/// above syscall-churn territory.
pub(crate) const CONN_TICK: Duration = Duration::from_millis(100);

/// How long the accept loop sleeps when no connection is pending
/// (`accept` has no portable wakeup).
pub(crate) const ACCEPT_TICK: Duration = Duration::from_millis(25);

/// A serving or connection address: a Unix domain socket path or a TCP
/// `host:port`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Endpoint {
    /// Unix domain socket at this path.
    Unix(PathBuf),
    /// TCP address in `host:port` form.
    Tcp(String),
}

impl Endpoint {
    /// Parses the flag spelling: `unix:/path`, `tcp:host:port`, or a bare
    /// path (treated as a Unix socket, the historical default).
    ///
    /// # Errors
    ///
    /// A human-readable message for an empty or malformed spelling.
    pub fn parse(text: &str) -> Result<Endpoint, String> {
        if let Some(rest) = text.strip_prefix("tcp:") {
            if rest.is_empty() || !rest.contains(':') {
                return Err(format!("`{text}`: tcp endpoints are tcp:host:port"));
            }
            return Ok(Endpoint::Tcp(rest.to_string()));
        }
        let path = text.strip_prefix("unix:").unwrap_or(text);
        if path.is_empty() {
            return Err(format!("`{text}`: empty endpoint"));
        }
        Ok(Endpoint::Unix(PathBuf::from(path)))
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Unix(path) => write!(f, "unix:{}", path.display()),
            Endpoint::Tcp(addr) => write!(f, "tcp:{addr}"),
        }
    }
}

/// A bound server socket on either transport.
pub(crate) enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

/// Binds `endpoint` without stealing a live daemon's Unix socket: an
/// existing socket file is *probed* with a connect first — if something
/// answers, the bind refuses with `AddrInUse` (the operator addressed two
/// servers at one path); only a genuinely stale file (connect fails: the
/// previous owner is gone) is unlinked and replaced.
pub(crate) fn bind(endpoint: &Endpoint) -> std::io::Result<Listener> {
    match endpoint {
        Endpoint::Unix(path) => {
            if path.exists() {
                if UnixStream::connect(path).is_ok() {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::AddrInUse,
                        format!(
                            "a live server already answers on {} — refusing to steal its socket",
                            path.display()
                        ),
                    ));
                }
                std::fs::remove_file(path)?;
            }
            UnixListener::bind(path).map(Listener::Unix)
        }
        Endpoint::Tcp(addr) => TcpListener::bind(addr.as_str()).map(Listener::Tcp),
    }
}

impl Listener {
    pub(crate) fn set_nonblocking(&self, nonblocking: bool) -> std::io::Result<()> {
        match self {
            Listener::Unix(l) => l.set_nonblocking(nonblocking),
            Listener::Tcp(l) => l.set_nonblocking(nonblocking),
        }
    }

    pub(crate) fn accept(&self) -> std::io::Result<Stream> {
        match self {
            Listener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
            Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
        }
    }

    /// The endpoint actually bound — for TCP this resolves `port 0` to
    /// the kernel-assigned port, which is how tests listen collision-free.
    pub(crate) fn local_endpoint(&self, requested: &Endpoint) -> Endpoint {
        match self {
            Listener::Unix(_) => requested.clone(),
            Listener::Tcp(l) => match l.local_addr() {
                Ok(addr) => Endpoint::Tcp(addr.to_string()),
                Err(_) => requested.clone(),
            },
        }
    }
}

/// A connected stream on either transport. Implements [`Read`] and
/// [`Write`]; clone with [`Stream::try_clone`] to split reader/writer.
#[derive(Debug)]
pub enum Stream {
    /// A Unix domain socket connection.
    Unix(UnixStream),
    /// A TCP connection.
    Tcp(TcpStream),
}

impl Stream {
    /// Connects to `endpoint`.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(endpoint: &Endpoint) -> std::io::Result<Stream> {
        match endpoint {
            Endpoint::Unix(path) => UnixStream::connect(path).map(Stream::Unix),
            Endpoint::Tcp(addr) => TcpStream::connect(addr.as_str()).map(Stream::Tcp),
        }
    }

    /// Clones the underlying socket handle (shared file offset — the
    /// standard reader/writer split).
    ///
    /// # Errors
    ///
    /// Propagates `dup` failures.
    pub fn try_clone(&self) -> std::io::Result<Stream> {
        match self {
            Stream::Unix(s) => s.try_clone().map(Stream::Unix),
            Stream::Tcp(s) => s.try_clone().map(Stream::Tcp),
        }
    }

    /// Sets the socket read timeout (reads then fail with
    /// `WouldBlock`/`TimedOut` instead of blocking forever).
    ///
    /// # Errors
    ///
    /// Propagates `setsockopt` failures.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => s.set_read_timeout(timeout),
            Stream::Tcp(s) => s.set_read_timeout(timeout),
        }
    }

    /// Sets the socket write timeout.
    ///
    /// # Errors
    ///
    /// Propagates `setsockopt` failures.
    pub fn set_write_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => s.set_write_timeout(timeout),
            Stream::Tcp(s) => s.set_write_timeout(timeout),
        }
    }

    /// Shuts the connection down (both directions).
    pub fn shutdown(&self) {
        match self {
            Stream::Unix(s) => {
                let _ = s.shutdown(Shutdown::Both);
            }
            Stream::Tcp(s) => {
                let _ = s.shutdown(Shutdown::Both);
            }
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

/// What [`read_frame`] observed on the connection.
pub(crate) enum FrameEvent {
    /// One complete `\n`-terminated frame (newline stripped, lossy UTF-8).
    Frame(String),
    /// The peer closed the connection (a partial unterminated frame, if
    /// any, is discarded — it can never complete).
    Eof,
    /// The [`MAX_FRAME`] bound was hit before the newline; `usize` is the
    /// observed length. The connection is desynchronized past this point.
    Oversized(usize),
    /// No complete frame arrived within the idle limit — a stalled or
    /// slowloris peer. The caller should close the connection.
    IdleTimeout,
    /// The server's shutdown flag was raised while waiting.
    Shutdown,
}

/// Reads one `\n`-terminated frame with the [`MAX_FRAME`] bound applied
/// *while reading* (an adversarial multi-gigabyte line is cut off rather
/// than buffered) and an idle deadline applied across timeout wakeups (a
/// peer trickling bytes without ever finishing a frame is disconnected).
///
/// The stream's read timeout must be set (to [`CONN_TICK`]) so a blocked
/// read wakes periodically; partial bytes accumulated before a wakeup are
/// kept and the read resumes where it left off.
pub(crate) fn read_frame<S: Read>(
    reader: &mut BufReader<S>,
    shutdown: &AtomicBool,
    idle_limit: Duration,
) -> std::io::Result<FrameEvent> {
    let mut buf = Vec::new();
    let start = Instant::now();
    loop {
        if buf.last() == Some(&b'\n') {
            while matches!(buf.last(), Some(b'\n' | b'\r')) {
                buf.pop();
            }
            let line = match String::from_utf8(buf) {
                Ok(line) => line,
                // Surface invalid UTF-8 as an unparseable frame; the
                // dispatcher answers with a typed bad-request error.
                Err(_) => "\u{FFFD}".to_string(),
            };
            return Ok(FrameEvent::Frame(line));
        }
        if buf.len() > MAX_FRAME {
            return Ok(FrameEvent::Oversized(buf.len()));
        }
        let budget = (MAX_FRAME + 2 - buf.len()) as u64;
        match (&mut *reader).take(budget).read_until(b'\n', &mut buf) {
            // `budget >= 2` here, so 0 bytes is a genuine EOF.
            Ok(0) => return Ok(FrameEvent::Eof),
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) =>
            {
                // A timeout wakeup, not a dead peer: bytes already read
                // stay in `buf` and the next round resumes the frame.
                if shutdown.load(Ordering::SeqCst) {
                    return Ok(FrameEvent::Shutdown);
                }
                if start.elapsed() >= idle_limit {
                    return Ok(FrameEvent::IdleTimeout);
                }
            }
            Err(e) => return Err(e),
        }
    }
}

/// Connection-handling limits shared by the daemon and the router.
#[derive(Clone, Copy, Debug)]
pub(crate) struct ConnLimits {
    /// Live connections beyond this are refused with a typed `busy`
    /// error frame.
    pub max_connections: usize,
    /// A connection with no complete frame for this long is closed.
    pub read_timeout: Duration,
}

/// Runs the polling accept loop until `shutdown` is raised: every
/// accepted stream gets its read timeout armed and is handed to `handler`
/// on its own thread; connections beyond `limits.max_connections` are
/// refused with a typed [`ErrorCode::Busy`] frame. On exit — shutdown or
/// a fatal accept error — every live connection thread is **joined**
/// (handlers observe the flag within one [`CONN_TICK`] via
/// [`read_frame`]), so the caller can tear the process down knowing no
/// detached thread still holds its state.
pub(crate) fn accept_loop<H>(
    listener: &Listener,
    shutdown: &Arc<AtomicBool>,
    limits: ConnLimits,
    handler: Arc<H>,
) -> std::io::Result<()>
where
    H: Fn(Stream) + Send + Sync + 'static,
{
    listener.set_nonblocking(true)?;
    let active = Arc::new(AtomicUsize::new(0));
    let mut threads: Vec<JoinHandle<()>> = Vec::new();
    let mut accept_error = None;
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok(stream) => {
                threads.retain(|t| !t.is_finished());
                if active.load(Ordering::SeqCst) >= limits.max_connections {
                    refuse_busy(stream, limits.max_connections);
                    continue;
                }
                if stream.set_read_timeout(Some(CONN_TICK)).is_err()
                    || stream.set_write_timeout(Some(limits.read_timeout)).is_err()
                {
                    continue; // peer already gone
                }
                active.fetch_add(1, Ordering::SeqCst);
                let (active, handler) = (active.clone(), handler.clone());
                threads.push(std::thread::spawn(move || {
                    handler(stream);
                    active.fetch_sub(1, Ordering::SeqCst);
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_TICK);
            }
            Err(e) => {
                accept_error = Some(e);
                break;
            }
        }
    }
    // Raise the flag for the fatal-accept-error path too, then join every
    // connection: each blocked read wakes within a CONN_TICK and observes
    // it via `read_frame`.
    shutdown.store(true, Ordering::SeqCst);
    for thread in threads {
        let _ = thread.join();
    }
    match accept_error {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Best-effort typed refusal for a connection over the cap.
fn refuse_busy(mut stream: Stream, cap: usize) {
    obs::event(
        obs::Level::Warn,
        "net",
        "connection refused at the cap",
        &[("max_connections", &cap.to_string())],
    );
    let response = Response::Error {
        code: ErrorCode::Busy,
        message: format!("connection limit reached ({cap} live connections)"),
    };
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    if let Ok(frame) = encode_response(&response) {
        let _ = stream.write_all(format!("{frame}\n").as_bytes());
        let _ = stream.flush();
    }
    stream.shutdown();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_parse_round_trips_the_flag_spelling() {
        assert_eq!(
            Endpoint::parse("unix:/tmp/q.sock").unwrap(),
            Endpoint::Unix(PathBuf::from("/tmp/q.sock"))
        );
        assert_eq!(
            Endpoint::parse("/tmp/q.sock").unwrap(),
            Endpoint::Unix(PathBuf::from("/tmp/q.sock")),
            "bare paths stay Unix sockets (historical default)"
        );
        assert_eq!(
            Endpoint::parse("tcp:127.0.0.1:7911").unwrap(),
            Endpoint::Tcp("127.0.0.1:7911".to_string())
        );
        for bad in ["", "unix:", "tcp:", "tcp:localhost"] {
            assert!(Endpoint::parse(bad).is_err(), "`{bad}` must not parse");
        }
        for spelled in ["unix:/tmp/q.sock", "tcp:127.0.0.1:7911"] {
            assert_eq!(
                Endpoint::parse(spelled).unwrap().to_string(),
                spelled,
                "Display is the parseable spelling"
            );
        }
    }

    #[test]
    fn frame_reader_resumes_across_timeout_wakeups() {
        // A socketpair where the writer trickles a frame in two halves
        // slower than the read timeout tick: the reader must keep the
        // partial bytes and finish the frame.
        let (mut tx, rx) = UnixStream::pair().unwrap();
        rx.set_read_timeout(Some(Duration::from_millis(10)))
            .unwrap();
        let writer = std::thread::spawn(move || {
            tx.write_all(b"{\"half\":").unwrap();
            tx.flush().unwrap();
            std::thread::sleep(Duration::from_millis(60));
            tx.write_all(b"1}\n").unwrap();
            tx.flush().unwrap();
        });
        let shutdown = AtomicBool::new(false);
        let mut reader = BufReader::new(Stream::Unix(rx));
        match read_frame(&mut reader, &shutdown, Duration::from_secs(5)).unwrap() {
            FrameEvent::Frame(line) => assert_eq!(line, "{\"half\":1}"),
            _ => panic!("split frame must still be assembled"),
        }
        writer.join().unwrap();
    }

    #[test]
    fn frame_reader_times_out_a_stalled_peer() {
        let (tx, rx) = UnixStream::pair().unwrap();
        rx.set_read_timeout(Some(Duration::from_millis(10)))
            .unwrap();
        let shutdown = AtomicBool::new(false);
        let mut reader = BufReader::new(Stream::Unix(rx));
        let t0 = Instant::now();
        match read_frame(&mut reader, &shutdown, Duration::from_millis(80)).unwrap() {
            FrameEvent::IdleTimeout => {}
            _ => panic!("a silent peer must hit the idle limit"),
        }
        assert!(t0.elapsed() < Duration::from_secs(5), "bounded wait");
        drop(tx);
    }

    #[test]
    fn frame_reader_observes_shutdown_mid_wait() {
        let (tx, rx) = UnixStream::pair().unwrap();
        rx.set_read_timeout(Some(Duration::from_millis(10)))
            .unwrap();
        let shutdown = AtomicBool::new(true); // raised before the wait
        let mut reader = BufReader::new(Stream::Unix(rx));
        match read_frame(&mut reader, &shutdown, Duration::from_secs(60)).unwrap() {
            FrameEvent::Shutdown => {}
            _ => panic!("shutdown must interrupt the wait"),
        }
        drop(tx);
    }

    #[test]
    fn frame_reader_cuts_oversized_frames_mid_read() {
        let (mut tx, rx) = UnixStream::pair().unwrap();
        rx.set_read_timeout(Some(Duration::from_millis(10)))
            .unwrap();
        let writer = std::thread::spawn(move || {
            // MAX_FRAME + slack of newline-free bytes.
            let chunk = vec![b'x'; 64 * 1024];
            let mut sent = 0usize;
            while sent <= MAX_FRAME + 2 {
                if tx.write_all(&chunk).is_err() {
                    return; // reader hung up after flagging oversize
                }
                sent += chunk.len();
            }
        });
        let shutdown = AtomicBool::new(false);
        let mut reader = BufReader::new(Stream::Unix(rx));
        match read_frame(&mut reader, &shutdown, Duration::from_secs(60)).unwrap() {
            FrameEvent::Oversized(len) => assert!(len > MAX_FRAME),
            _ => panic!("an endless line must be flagged oversized"),
        }
        drop(reader); // hang up so the writer unblocks
        writer.join().unwrap();
    }
}
