//! Quickstart: route a small QASM program onto IBM Sherbrooke with Qlosure.
//!
//! ```text
//! cargo run --release -p qlosure --example quickstart
//! ```

use qlosure::{route_qasm, QlosureConfig};
use topology::backends;

const PROGRAM: &str = r#"
OPENQASM 2.0;
include "qelib1.inc";
qreg q[5];
creg c[5];
h q[0];
cx q[0], q[1];
cx q[0], q[2];
cx q[0], q[3];
cx q[0], q[4];
measure q -> c;
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = backends::sherbrooke();
    println!(
        "device: {} ({} qubits, {} couplings, max degree {})",
        device.name(),
        device.n_qubits(),
        device.n_edges(),
        device.max_degree()
    );
    let (mapped_qasm, result) = route_qasm(PROGRAM, &device, &QlosureConfig::default())?;
    println!(
        "routed with {} SWAPs at depth {}",
        result.swaps,
        result.depth()
    );
    println!("\n--- mapped program ---\n{mapped_qasm}");
    Ok(())
}
