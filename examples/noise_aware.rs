//! Domain scenario: error-aware mapping — the paper's stated future-work
//! direction. A synthetic calibration (log-uniform spread of two-qubit
//! error rates, like published Eagle data) replaces hop counts with
//! reliability-weighted distances, and the estimated success probability
//! of the routed circuit is compared against noise-blind routing.
//!
//! ```text
//! cargo run --release -p qlosure --example noise_aware
//! ```

use circuit::verify_routing;
use qlosure::{Mapper, QlosureMapper};
use topology::{backends, NoiseModel};

fn success(noise: &NoiseModel, routed: &circuit::Circuit) -> f64 {
    let gates: Vec<(&str, &[u32])> = routed
        .gates()
        .iter()
        .map(|g| (g.kind.name(), g.qubits.as_slice()))
        .collect();
    noise.success_probability(gates)
}

fn main() {
    let device = backends::sherbrooke();
    let noise = NoiseModel::synthetic(&device, 7e-3, 42);
    let circuit = qasmbench::qugan(39, 13);
    println!(
        "qugan_n39 on {} with synthetic calibration (median 2q error 7e-3)",
        device.name()
    );
    let mapper = QlosureMapper::default();

    let blind = mapper.map(&circuit, &device);
    verify_routing(
        &circuit,
        &blind.routed,
        &|a, b| device.is_adjacent(a, b),
        &blind.initial_layout,
    )
    .expect("blind routing verifies");

    let aware = mapper.map_noise_aware(&circuit, &device, &noise);
    verify_routing(
        &circuit,
        &aware.routed,
        &|a, b| device.is_adjacent(a, b),
        &aware.initial_layout,
    )
    .expect("noise-aware routing verifies");

    println!(
        "noise-blind : {:>4} swaps, depth {:>4}, est. success {:.3e}",
        blind.swaps,
        blind.depth(),
        success(&noise, &blind.routed)
    );
    println!(
        "noise-aware : {:>4} swaps, depth {:>4}, est. success {:.3e}",
        aware.swaps,
        aware.depth(),
        success(&noise, &aware.routed)
    );
}
