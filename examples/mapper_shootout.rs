//! Domain scenario: a five-way mapper shoot-out on a QUEKO instance with
//! known optimal depth — the core experiment of the paper's §VI-C, in
//! miniature.
//!
//! ```text
//! cargo run --release -p qlosure --example mapper_shootout [depth]
//! ```

use baselines::all_baselines;
use circuit::verify_routing;
use qlosure::{Mapper, QlosureMapper};
use queko::QuekoSpec;
use topology::backends;

fn main() {
    let depth: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(300);
    let gen_device = backends::king_grid(9, 9);
    let device = backends::sherbrooke();
    let bench = QuekoSpec::new(&gen_device, depth).seed(1).generate();
    println!(
        "queko-bss-81qbt @ optimal depth {}: {} gates ({} two-qubit)",
        bench.optimal_depth,
        bench.circuit.qop_count(),
        bench.circuit.two_qubit_count()
    );
    println!(
        "{:<8} {:>7} {:>7} {:>12} {:>8}",
        "mapper", "swaps", "depth", "depth-factor", "time"
    );
    let mut mappers: Vec<Box<dyn Mapper + Send + Sync>> = all_baselines();
    mappers.push(Box::new(QlosureMapper::default()));
    for mapper in &mappers {
        let start = std::time::Instant::now();
        let result = mapper.map(&bench.circuit, &device);
        let elapsed = start.elapsed();
        verify_routing(
            &bench.circuit,
            &result.routed,
            &|a, b| device.is_adjacent(a, b),
            &result.initial_layout,
        )
        .expect("routing verifies");
        println!(
            "{:<8} {:>7} {:>7} {:>12.2} {:>7.2}s",
            mapper.name(),
            result.swaps,
            result.depth(),
            result.depth() as f64 / bench.optimal_depth as f64,
            elapsed.as_secs_f64()
        );
    }
}
