//! Domain scenario: map a 63-qubit quantum Fourier transform (the
//! `qft_n63` workload from the paper's Table V) onto IBM Sherbrooke and
//! compare Qlosure with the SABRE baseline — including the dependence
//! analysis details the paper's §IV builds on.
//!
//! ```text
//! cargo run --release -p qlosure --example qft_on_sherbrooke
//! ```

use affine::{DependenceAnalysis, WeightMode};
use baselines::SabreMapper;
use circuit::verify_routing;
use qlosure::{Mapper, QlosureMapper};
use topology::backends;

fn main() {
    let circuit = qasmbench::qft(63);
    let device = backends::sherbrooke();
    println!(
        "qft_n63: {} gates ({} two-qubit), logical depth {}",
        circuit.qop_count(),
        circuit.two_qubit_count(),
        circuit.depth()
    );
    // Peek at the affine machinery: the QFT's controlled-phase ladders are
    // exactly the regular structure QRANE-style lifting compresses.
    let lifting = affine::lift_interactions(&circuit);
    println!(
        "lifting: {} interactions -> {} macro-gates (compression {:.1}x)",
        lifting.n_interactions(),
        lifting.statements.len(),
        lifting.compression()
    );
    let analysis = DependenceAnalysis::new(&circuit, WeightMode::Auto);
    println!(
        "dependence weights via {:?}; heaviest gate blocks {} downstream gates",
        analysis.path(),
        analysis.weights().iter().max().unwrap_or(&0)
    );
    for mapper in [
        &QlosureMapper::default() as &dyn Mapper,
        &SabreMapper::default() as &dyn Mapper,
    ] {
        let start = std::time::Instant::now();
        let result = mapper.map(&circuit, &device);
        let elapsed = start.elapsed();
        verify_routing(
            &circuit,
            &result.routed,
            &|a, b| device.is_adjacent(a, b),
            &result.initial_layout,
        )
        .expect("routing verifies");
        println!(
            "{:<8} swaps {:>6}  depth {:>6}  time {:.2}s",
            mapper.name(),
            result.swaps,
            result.depth(),
            elapsed.as_secs_f64()
        );
    }
}
