//! Domain scenario: bring-your-own QPU. Define a custom coupling graph,
//! inspect its distance matrix, and route an adder across it with the full
//! Qlosure configuration surface (cost variants, bidirectional passes).
//!
//! ```text
//! cargo run --release -p qlosure --example custom_topology
//! ```

use circuit::verify_routing;
use qlosure::{CostVariant, InitialMapping, Mapper, QlosureConfig, QlosureMapper};
use topology::CouplingGraph;

fn main() {
    // A hypothetical 2x16 "ladder" QPU with sparse rungs.
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for i in 0..15u32 {
        edges.push((i, i + 1)); // top rail
        edges.push((16 + i, 17 + i)); // bottom rail
    }
    for i in (0..16u32).step_by(3) {
        edges.push((i, 16 + i)); // every third rung
    }
    let device = CouplingGraph::new("ladder_2x16", 32, &edges);
    let dist = device.distances();
    println!(
        "{}: {} qubits, {} edges, diameter {}",
        device.name(),
        device.n_qubits(),
        device.n_edges(),
        dist.diameter()
    );
    let circuit = qasmbench::cuccaro_adder(28);
    println!(
        "adder_n28: {} gates ({} two-qubit), logical depth {}",
        circuit.qop_count(),
        circuit.two_qubit_count(),
        circuit.depth()
    );
    for (label, config) in [
        (
            "distance-only",
            QlosureConfig {
                cost: CostVariant::DistanceOnly,
                ..QlosureConfig::default()
            },
        ),
        ("full Eq.(2)", QlosureConfig::default()),
        (
            "full + bidirectional",
            QlosureConfig {
                initial: InitialMapping::Bidirectional { passes: 2 },
                ..QlosureConfig::default()
            },
        ),
    ] {
        let mapper = QlosureMapper::with_config(config);
        let result = mapper.map(&circuit, &device);
        verify_routing(
            &circuit,
            &result.routed,
            &|a, b| device.is_adjacent(a, b),
            &result.initial_layout,
        )
        .expect("routing verifies");
        println!(
            "{:<22} swaps {:>5}  depth {:>5}",
            label,
            result.swaps,
            result.depth()
        );
    }
}
